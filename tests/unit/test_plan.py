"""The rule compiler and the store's secondary indexes."""

from repro.datalog import (
    Var, Atom, Guard, Rule, AggregateRule, Program, DatalogApp,
)
from repro.datalog.plan import AggPlan, RulePlan, compile_rule
from repro.datalog.store import TupleStore
from repro.model import Tup

X, Y, Z, K, D = Var("X"), Var("Y"), Var("Z"), Var("K"), Var("D")


class TestJoinCompilation:
    def test_one_plan_per_trigger_position(self):
        rule = Rule("R", Atom("h", X, Z),
                    [Atom("e", X, Y), Atom("f", X, Y, Z)])
        plan = compile_rule(rule)
        assert isinstance(plan, RulePlan)
        assert len(plan.joins) == 2
        assert [j.trigger_pos for j in plan.joins] == [0, 1]

    def test_index_key_covers_bound_variables(self):
        rule = Rule("R", Atom("h", X, Z),
                    [Atom("e", X, Y), Atom("f", X, Y, Z)])
        plan = compile_rule(rule)
        # Triggered on e(X,Y): the f-step knows loc X (pos 0) and Y (pos 1).
        step = plan.joins[0].steps[0]
        assert step.atom.relation == "f"
        assert step.index_positions == (0, 1)
        key = step.key({"X": "n", "Y": "v", "Z": "ignored"})
        assert key == ("n", "v")

    def test_constants_participate_in_index_keys(self):
        rule = Rule("R", Atom("h", X),
                    [Atom("e", X, Y), Atom("f", X, "fixed", Y)])
        plan = compile_rule(rule)
        step = plan.joins[0].steps[0]
        assert step.index_positions == (0, 1, 2)
        assert step.key({"X": "n", "Y": 7}) == ("n", "fixed", 7)

    def test_most_bound_atom_joins_first(self):
        # Triggered on a(X): c shares X and Y is still free, so the
        # 2-bound-position atom c must be probed before b.
        rule = Rule(
            "R", Atom("h", X),
            [Atom("a", X, K), Atom("b", X, Y), Atom("c", X, K, Y)],
        )
        plan = compile_rule(rule)
        order = [step.atom.relation for step in plan.joins[0].steps]
        assert order == ["c", "b"]

    def test_guard_fires_at_earliest_step(self):
        guard_xy = Guard(lambda b: b["X"] != b["Y"], vars=(X, Y),
                         label="X!=Y")
        guard_zk = Guard(lambda b: b["Z"] < b["K"], vars=(Z, K),
                         label="Z<K")
        rule = Rule(
            "R", Atom("h", X),
            [Atom("e", X, Y), Atom("f", X, Z), Atom("g", X, K)],
            guards=[guard_xy, guard_zk],
        )
        plan = compile_rule(rule)
        join = plan.joins[0]       # triggered on e: X,Y bound immediately
        assert guard_xy in join.pre_guards
        assert guard_zk not in join.pre_guards
        # Z binds at the f-step, K at the g-step: guard_zk fires at g.
        by_relation = {s.atom.relation: s.guards for s in join.steps}
        assert guard_zk in by_relation["g"]
        assert guard_zk not in by_relation["f"]

    def test_opaque_guard_waits_for_full_binding(self):
        opaque = lambda b: b["Y"] != b["Z"]  # noqa: E731
        rule = Rule(
            "R", Atom("h", X),
            [Atom("e", X, Y), Atom("f", X, Z)],
            guards=[opaque],
        )
        plan = compile_rule(rule)
        join = plan.joins[0]
        assert opaque not in join.pre_guards
        assert opaque in join.steps[-1].guards

    def test_index_requirements_aggregated(self):
        program = Program([
            Rule("R", Atom("h", X, Z),
                 [Atom("e", X, Y), Atom("f", X, Y, Z)]),
        ])
        requirements = program.index_requirements()
        assert ("f", (0, 1)) in requirements
        assert ("e", (0, 1)) in requirements  # f-triggered probe of e


class TestAggCompilation:
    def test_group_positions_and_perm(self):
        rule = AggregateRule(
            "A", Atom("best", X, D, K), [Atom("cost", X, D, Z, K)],
            agg_var=K, func="min",
        )
        plan = compile_rule(rule)
        assert isinstance(plan, AggPlan)
        # group_vars are (X, D) at atom positions 0 and 1.
        assert plan.group_positions == (0, 1)
        assert plan.group_index_key(("n", "dest")) == ("n", "dest")
        assert plan.index_requirements() == {("cost", (0, 1))}

    def test_head_agg_position(self):
        rule = AggregateRule(
            "A", Atom("best", X, K), [Atom("cost", X, Z, K)],
            agg_var=K, func="min",
        )
        plan = compile_rule(rule)
        assert plan.head_agg_pos == 1
        assert plan.head_agg_value(Tup("best", "n", 42)) == 42

    def test_groupless_aggregate_has_no_index(self):
        rule = AggregateRule(
            "A", Atom("total", "hub", K), [Atom("c", "hub", Z, K)],
            agg_var=K, func="sum",
        )
        plan = compile_rule(rule)
        assert plan.group_positions == ()
        assert plan.index_requirements() == set()


class TestStoreIndexes:
    def test_register_backfills_existing_tuples(self):
        store = TupleStore("n")
        store.add_base(Tup("e", "n", "a", 1), 0.0)
        store.add_base(Tup("e", "n", "b", 2), 0.0)
        store.register_index("e", (1,))
        assert store.index_lookup("e", (1,), ("a",)) == {
            Tup("e", "n", "a", 1)
        }

    def test_incremental_maintenance(self):
        store = TupleStore("n")
        store.register_index("e", (1,))
        t = Tup("e", "n", "a", 1)
        store.add_base(t, 0.0)
        assert t in store.index_lookup("e", (1,), ("a",))
        store.remove_base(t)
        assert not store.index_lookup("e", (1,), ("a",))

    def test_remote_tuples_not_indexed(self):
        store = TupleStore("n")
        store.register_index("e", (1,))
        store.add_base(Tup("e", "m", "a", 1), 0.0)  # located elsewhere
        assert not store.index_lookup("e", (1,), ("a",))

    def test_short_arity_tuples_skipped(self):
        store = TupleStore("n")
        store.register_index("e", (2,))
        store.add_base(Tup("e", "n"), 0.0)   # no position 2: unindexable
        store.add_base(Tup("e", "n", "x", "y"), 0.0)
        assert store.index_lookup("e", (2,), ("y",)) == {
            Tup("e", "n", "x", "y")
        }

    def test_unregistered_lookup_degrades_to_scan(self):
        store = TupleStore("n")
        store.add_base(Tup("e", "n", "a"), 0.0)
        got = store.index_lookup("e", (9, 9), ("whatever",))
        assert Tup("e", "n", "a") in got

    def test_restore_rebuilds_indexes(self):
        store = TupleStore("n")
        store.register_index("e", (1,))
        store.add_base(Tup("e", "n", "a", 1), 0.0)
        snap = store.snapshot()
        store.add_base(Tup("e", "n", "b", 2), 0.0)
        store.restore(snap)
        assert store.index_lookup("e", (1,), ("a",)) == {
            Tup("e", "n", "a", 1)
        }
        assert not store.index_lookup("e", (1,), ("b",))


class TestEngineUsesIndexes:
    def test_app_registers_program_requirements(self):
        program = Program([
            Rule("R", Atom("h", X, Z),
                 [Atom("e", X, Y), Atom("f", X, Y, Z)]),
        ])
        app = DatalogApp("n", program)
        # The f-index exists and is maintained through the engine API.
        app.handle_insert(Tup("f", "n", "v", 9), 0.0)
        assert app.store.index_lookup("f", (0, 1), ("n", "v")) == {
            Tup("f", "n", "v", 9)
        }

    def test_join_through_index_matches_scan(self):
        program = Program([
            Rule("R", Atom("h", X, Z),
                 [Atom("e", X, Y), Atom("f", X, Y, Z)]),
        ])
        app = DatalogApp("n", program)
        for v in range(5):
            app.handle_insert(Tup("f", "n", f"k{v}", v), 0.0)
        app.handle_insert(Tup("e", "n", "k3"), 1.0)
        assert app.has_tuple(Tup("h", "n", 3))
        assert not app.has_tuple(Tup("h", "n", 2))
