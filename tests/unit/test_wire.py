"""The wire layer's serialization contract (repro/snp/wire.py).

Three families of guarantees:

* the validating codec round-trips every supported value shape and
  rejects everything else (hypothesis-driven);
* value objects pickle *through their constructors*, so process-local
  memoized hashes can never leak across a process boundary;
* the composite forms — sanitized responses, replay envelopes, build
  contexts, factory specs — survive a pickle round trip with identical
  observable behavior (hashes re-verify, replays extend identically).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mincost import best_cost, build_paper_network, link, \
    mincost_factory
from repro.model import Ack, Msg, Tup
from repro.apps import AppFactory, factory_from_spec
from repro.metrics import QueryStats
from repro.snp import Deployment, QueryProcessor
from repro.snp.replay import extend_replay, verify_segment_hashes
from repro.snp.wire import (
    BuildContext, BuildWork, WireError, replay_from_wire, replay_to_wire,
    sanitize_response, stats_from_wire, stats_to_wire, value_from_wire,
    value_to_wire,
)

# ------------------------------------------------------------- strategies

atoms = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=8), st.binary(max_size=8),
)

tups = st.builds(
    lambda rel, loc, args: Tup(rel, loc, *args),
    st.text(min_size=1, max_size=6), st.text(min_size=1, max_size=4),
    st.lists(st.one_of(st.integers(), st.text(max_size=4)), max_size=3),
)

msgs = st.builds(
    lambda pol, tup, src, dst, seq, t: Msg(pol, tup, src, dst, seq, t),
    st.sampled_from("+-"), tups, st.text(min_size=1, max_size=3),
    st.text(min_size=1, max_size=3), st.integers(0, 99),
    st.floats(0, 100, allow_nan=False),
)

acks = st.builds(
    lambda src, dst, ms, t: Ack(src, dst, ms, t),
    st.text(min_size=1, max_size=3), st.text(min_size=1, max_size=3),
    st.lists(msgs, max_size=2), st.floats(0, 100, allow_nan=False),
)

values = st.recursive(
    st.one_of(atoms, tups, msgs, acks),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(st.one_of(atoms.filter(lambda a: a is not None
                                               or True), tups),
                        children, max_size=3),
        st.sets(st.one_of(st.integers(), st.text(max_size=4)), max_size=3),
        st.frozensets(st.integers(), max_size=3),
    ),
    max_leaves=12,
)


def _only_builtins(wire):
    if wire is None or isinstance(wire, (bool, int, float, str, bytes)):
        return True
    if isinstance(wire, tuple):
        return all(_only_builtins(v) for v in wire)
    return False


class TestValueCodec:
    @settings(max_examples=120, deadline=None)
    @given(values)
    def test_round_trip_is_identity_on_the_wire(self, value):
        wire = value_to_wire(value)
        assert _only_builtins(wire)
        assert pickle.loads(pickle.dumps(wire)) == wire
        decoded = value_from_wire(wire)
        assert value_to_wire(decoded) == wire

    @settings(max_examples=40, deadline=None)
    @given(st.one_of(tups, msgs))
    def test_decoded_value_objects_compare_equal(self, value):
        decoded = value_from_wire(value_to_wire(value))
        assert decoded == value
        assert hash(decoded) == hash(value)

    def test_rejects_unencodable_values(self):
        for bad in (lambda: None, object(), type("X", (), {})()):
            with pytest.raises(WireError):
                value_to_wire(bad)

    def test_rejects_unknown_wire_forms(self):
        with pytest.raises(WireError):
            value_from_wire(("W.nonsense", 1))
        with pytest.raises(WireError):
            value_from_wire(object())

    def test_encoding_snapshots_mutable_containers(self):
        store = {"h": "text"}
        wire = value_to_wire(store)
        store["h2"] = "later"
        assert value_from_wire(wire) == {"h": "text"}


class TestConstructorPickling:
    """Tup/Msg memoize their hash; pickling must rebuild via __init__ so
    the hash is recomputed in the unpickling process."""

    def test_tup_reduce_goes_through_init(self):
        tup = Tup("link", "a", "b", 3)
        fn, args = tup.__reduce__()
        assert fn is Tup and args == ("link", "a", "b", 3)
        clone = pickle.loads(pickle.dumps(tup))
        assert clone == tup and hash(clone) == hash(tup)
        assert {tup: 1}[clone] == 1

    def test_msg_reduce_goes_through_init(self):
        msg = Msg("+", Tup("r", "a"), "a", "b", 7, 1.25)
        fn, _args = msg.__reduce__()
        assert fn is Msg
        clone = pickle.loads(pickle.dumps(msg))
        assert clone == msg and hash(clone) == hash(msg)

    def test_tup_canonical_key_survives(self):
        tup = Tup("r", "a", 1)
        clone = pickle.loads(pickle.dumps(tup))
        assert clone.canonical_key() == tup.canonical_key()


# --------------------------------------------------- composite wire forms


def _network(seed=7):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep)
    dep.run()
    return dep, nodes


def _graph_print(graph):
    return sorted((str(v.key()), v.color, v.t_end) for v in graph.vertices())


class TestResponseWire:
    def test_sanitized_response_round_trips_and_reverifies(self):
        dep, _nodes = _network()
        response = dep.node("a").retrieve()
        original_hashes = verify_segment_hashes(response)
        clone = pickle.loads(pickle.dumps(sanitize_response(response)))
        assert clone.node == response.node
        assert clone.start_index == response.start_index
        assert clone.start_hash == response.start_hash
        assert len(clone.entries) == len(response.entries)
        assert verify_segment_hashes(clone) == original_hashes
        assert clone.head_auth.signature == response.head_auth.signature

    def test_sanitize_strips_only_non_wire_aux(self):
        dep, _nodes = _network()
        response = dep.node("a").retrieve()
        sanitized = sanitize_response(response)
        for old, new in zip(response.entries, sanitized.entries):
            assert set(new.aux) <= set(old.aux)
            assert "batch" not in new.aux
            for key in ("tup", "msg", "batch_auth", "wire_ack"):
                assert (key in new.aux) == (key in old.aux)

    def test_checkpointed_response_round_trips(self):
        dep, nodes = _network()
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "q", 3))
        dep.run()
        response = dep.node("a").retrieve(from_checkpoint=True)
        assert response.checkpoint is not None
        clone = pickle.loads(pickle.dumps(sanitize_response(response)))
        assert clone.checkpoint.aux["snapshot"].keys() \
            == response.checkpoint.aux["snapshot"].keys()
        assert verify_segment_hashes(clone) \
            == verify_segment_hashes(response)


class TestReplayWire:
    def test_replay_round_trip_preserves_graph_and_extends_identically(
            self):
        dep, nodes = _network()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        view = qp.mq.view_of("a")
        factory = dep.app_factories["a"]

        wire = pickle.loads(pickle.dumps(replay_to_wire(view.replay)))
        clone = replay_from_wire(wire, factory)
        assert _graph_print(clone.graph) == _graph_print(view.replay.graph)
        assert clone.events_replayed == view.replay.events_replayed

        # Run the system further and extend both replays by the same
        # verified suffix: the reconstructed one (with its lazily restored
        # machine) must land on the same graph.
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        suffix = dep.node("a").retrieve(since_index=view.head_index)
        suffix2 = dep.node("a").retrieve(since_index=view.head_index)
        p1, _s1, f1 = extend_replay("a", view.replay, suffix)
        p2, _s2, f2 = extend_replay("a", clone, suffix2)
        assert (p1, f1) == (p2, f2)
        assert _graph_print(clone.graph) == _graph_print(view.replay.graph)

    def test_unretained_gca_is_rejected(self):
        dep, _nodes = _network()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        replay = qp.mq.view_of("a").replay
        replay.gca = None
        with pytest.raises(WireError):
            replay_to_wire(replay)


class TestStatsWire:
    def test_round_trip_is_field_generic(self):
        stats = QueryStats()
        stats.log_bytes = 123
        stats.auth_checks_recovered = 4
        stats.replay_seconds = 1.5
        clone = stats_from_wire(stats_to_wire(stats))
        assert clone.as_dict() == stats.as_dict()

    def test_wire_form_is_plain_and_sorted(self):
        wire = stats_to_wire(QueryStats())
        assert list(wire) == sorted(wire)
        assert _only_builtins(wire)


class TestContextAndSpecs:
    def test_context_round_trip_verifies_signatures(self):
        dep, _nodes = _network()
        context = BuildContext(
            {n: dep.public_key_of(n) for n in dep.nodes},
            verify_embedded_signatures=True,
            t_prop=dep.effective_t_prop(),
        )
        clone = BuildContext.from_wire(
            pickle.loads(pickle.dumps(context.to_wire()))
        )
        assert clone.t_prop == context.t_prop
        identity = dep.identity_of("a")
        signature = identity.sign(("probe", 1))
        from repro.util.serialization import canonical_bytes
        assert clone.public_keys["a"].verify(
            canonical_bytes(("probe", 1)), signature
        )

    def test_app_factory_spec_resolves_through_registry(self):
        factory = mincost_factory()
        assert isinstance(factory, AppFactory)
        spec = factory.wire_spec()
        assert _only_builtins(value_to_wire(spec))
        rebuilt = factory_from_spec(spec)
        machine = rebuilt("n1")
        assert machine.handle_insert(link("n1", "n2", 1), 0.0) is not None

    def test_unregistered_factory_is_rejected_at_the_boundary(self):
        dep, _nodes = _network()
        response = dep.node("a").retrieve()
        work = BuildWork("a", "built", response,
                         factory=lambda node_id: None)
        with pytest.raises(WireError, match="registry-backed"):
            work.to_wire()

    def test_unknown_spec_name_is_rejected(self):
        with pytest.raises(KeyError, match="no application builder"):
            factory_from_spec(("no-such-app", value_to_wire({})))
