"""Unit tests for application components: BGP policy logic, Chord ring
math, MapReduce partitioning — the deterministic kernels the integration
scenarios depend on."""

import pytest

from repro.apps.bgp import (
    BgpDaemon, CUSTOMER, PEER, PROVIDER, RELATIONSHIP_PREF,
)
from repro.apps.chord import in_halfopen_arc, ring_distance
from repro.apps.mapreduce import (
    MapReduceApp, CorruptWordCountApp, content_hash, partition_for,
)


class TestBgpDaemonSelection:
    def _daemon(self, **kwargs):
        return BgpDaemon(
            "me", {"cust": CUSTOMER, "peer": PEER, "prov": PROVIDER},
            **kwargs,
        )

    def test_customer_routes_preferred(self):
        daemon = self._daemon()
        best = daemon.select("p", [
            (("prov", "o"), "prov"),
            (("cust", "x", "o"), "cust"),   # longer but customer
        ])
        assert best == (("me", "cust", "x", "o"), "cust")

    def test_shorter_path_breaks_pref_ties(self):
        daemon = BgpDaemon("me", {"c1": CUSTOMER, "c2": CUSTOMER})
        best = daemon.select("p", [
            (("c1", "x", "o"), "c1"),
            (("c2", "o"), "c2"),
        ])
        assert best == (("me", "c2", "o"), "c2")

    def test_loopy_paths_rejected(self):
        daemon = self._daemon()
        assert daemon.select("p", [(("cust", "me", "o"), "cust")]) is None

    def test_origination_wins(self):
        daemon = self._daemon(originated=["p"])
        best = daemon.select("p", [(("cust", "o"), "cust")])
        assert best == (("me",), None)

    def test_pref_override(self):
        daemon = self._daemon(pref_override={("p", "prov"): 999})
        best = daemon.select("p", [
            (("prov", "o"), "prov"),
            (("cust", "o"), "cust"),
        ])
        assert best[1] == "prov"


class TestBgpExportPolicy:
    def _daemon(self, export_filter=None):
        return BgpDaemon(
            "me", {"cust": CUSTOMER, "peer": PEER, "prov": PROVIDER},
            export_filter=export_filter,
        )

    def test_customer_routes_export_everywhere(self):
        daemon = self._daemon()
        path = ("me", "cust", "o")
        for nbr in ("peer", "prov"):
            assert daemon.should_export(nbr, "p", path, "cust")

    def test_peer_routes_only_to_customers(self):
        daemon = self._daemon()
        path = ("me", "peer", "o")
        assert daemon.should_export("cust", "p", path, "peer")
        assert not daemon.should_export("prov", "p", path, "peer")

    def test_provider_routes_only_to_customers(self):
        daemon = self._daemon()
        path = ("me", "prov", "o")
        assert daemon.should_export("cust", "p", path, "prov")
        assert not daemon.should_export("peer", "p", path, "prov")

    def test_never_export_back(self):
        daemon = self._daemon()
        assert not daemon.should_export("cust", "p", ("me", "cust", "o"),
                                        "cust")

    def test_originated_routes_export_everywhere(self):
        daemon = self._daemon()
        for nbr in ("cust", "peer", "prov"):
            assert daemon.should_export(nbr, "p", ("me",), None)

    def test_custom_filter_vetoes(self):
        daemon = self._daemon(
            export_filter=lambda nbr, pfx, path: "bad" not in path)
        assert not daemon.should_export("cust", "p",
                                        ("me", "cust", "bad", "o"), "cust")

    def test_relationship_pref_ladder(self):
        assert RELATIONSHIP_PREF[CUSTOMER] > RELATIONSHIP_PREF[PEER] \
            > RELATIONSHIP_PREF[PROVIDER]


class TestChordRingMath:
    def test_ring_distance_wraps(self):
        assert ring_distance(10, 3, 4) == 9   # (3-10) mod 16
        assert ring_distance(3, 10, 4) == 7
        assert ring_distance(5, 5, 4) == 0

    def test_halfopen_arc_basic(self):
        assert in_halfopen_arc(5, 3, 8, 4)
        assert in_halfopen_arc(8, 3, 8, 4)    # right end inclusive
        assert not in_halfopen_arc(3, 3, 8, 4)  # left end exclusive
        assert not in_halfopen_arc(9, 3, 8, 4)

    def test_halfopen_arc_wrapping(self):
        assert in_halfopen_arc(1, 14, 3, 4)   # arc wraps through 0
        assert in_halfopen_arc(15, 14, 3, 4)
        assert not in_halfopen_arc(10, 14, 3, 4)

    def test_degenerate_single_node_arc(self):
        assert in_halfopen_arc(7, 5, 5, 4)    # single node owns everything


class TestMapReduceKernels:
    def test_partition_deterministic_and_balanced(self):
        words = [f"word{i}" for i in range(200)]
        parts = [partition_for(w, 4) for w in words]
        assert parts == [partition_for(w, 4) for w in words]
        for bucket in range(4):
            assert parts.count(bucket) > 10  # roughly balanced

    def test_content_hash_stability(self):
        assert content_hash("abc") == content_hash("abc")
        assert content_hash("abc") != content_hash("abd")

    def test_map_function_offsets(self):
        app = MapReduceApp("m", {})
        out = app.map_function("a bb ccc")
        assert out == [("a", 0), ("bb", 2), ("ccc", 5)]

    def test_corrupt_mapper_injects_exact_count(self):
        honest = MapReduceApp("m", {})
        corrupt = CorruptWordCountApp("m", {}, target_word="x",
                                      extra_count=7)
        text = "x y z"
        assert len(corrupt.map_function(text)) == \
            len(honest.map_function(text)) + 7

    def test_reduce_waits_for_all_mappers(self):
        from repro.apps.mapreduce import reduce_task, shuffle_block
        from repro.model import Msg, PLUS
        app = MapReduceApp("r", {})
        app.handle_insert(reduce_task("r", "j", ("m0", "m1")), 0.0)
        block0 = shuffle_block("r", "j", "m0", (("w", 2),))
        outs = app.handle_receive(
            Msg(PLUS, block0, "m0", "r", 0, 0.5), 0.6)
        assert not [o for o in outs
                    if getattr(o, "tup", None) is not None
                    and o.tup.relation == "output"]
        block1 = shuffle_block("r", "j", "m1", (("w", 3),))
        outs = app.handle_receive(
            Msg(PLUS, block1, "m1", "r", 0, 0.7), 0.8)
        outputs = [o.tup for o in outs
                   if getattr(o, "tup", None) is not None
                   and o.tup.relation == "output"]
        assert outputs == [
            __import__("repro.apps.mapreduce",
                       fromlist=["output_tuple"]).output_tuple(
                "r", "j", "w", 5)
        ]

    def test_outputs_emitted_once(self):
        from repro.apps.mapreduce import reduce_task, shuffle_block
        from repro.model import Msg, PLUS
        app = MapReduceApp("r", {})
        app.handle_insert(reduce_task("r", "j", ("m0",)), 0.0)
        block = shuffle_block("r", "j", "m0", (("w", 2),))
        first = app.handle_receive(Msg(PLUS, block, "m0", "r", 0, 0.5), 0.6)
        dup = shuffle_block("r", "j", "m0", ())
        second = app.handle_receive(Msg(PLUS, dup, "m0", "r", 1, 0.7), 0.8)
        assert any(getattr(o, "tup", None) is not None
                   and o.tup.relation == "output" for o in first)
        assert not any(getattr(o, "tup", None) is not None
                       and o.tup.relation == "output" for o in second)
