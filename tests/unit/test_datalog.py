"""Datalog substrate: unification, store refcounts, incremental engine."""

import pytest

from repro.datalog import (
    Var, Expr, Atom, Guard, Rule, AggregateRule, MaybeRule, Program,
    DatalogApp, choice_tuple,
)
from repro.datalog.store import TupleStore, DerivationInstance
from repro.model import Tup, Der, Und, Snd, Msg, PLUS, MINUS
from repro.util.errors import ConfigurationError

X, Y, Z, K = Var("X"), Var("Y"), Var("Z"), Var("K")


class TestAtomMatching:
    def test_match_binds_variables(self):
        atom = Atom("link", X, Y, K)
        got = atom.match(Tup("link", "a", "b", 3), {})
        assert got == {"X": "a", "Y": "b", "K": 3}

    def test_match_respects_existing_bindings(self):
        atom = Atom("link", X, Y, K)
        assert atom.match(Tup("link", "a", "b", 3), {"Y": "c"}) is None
        assert atom.match(Tup("link", "a", "b", 3), {"Y": "b"}) is not None

    def test_repeated_variable_must_agree(self):
        atom = Atom("self", X, X)
        assert atom.match(Tup("self", "a", "b"), {}) is None
        assert atom.match(Tup("self", "a", "a"), {}) == {"X": "a"}

    def test_constant_terms(self):
        atom = Atom("link", X, "b", K)
        assert atom.match(Tup("link", "a", "b", 1), {}) is not None
        assert atom.match(Tup("link", "a", "c", 1), {}) is None

    def test_wrong_relation_or_arity(self):
        atom = Atom("link", X, Y)
        assert atom.match(Tup("route", "a", "b"), {}) is None
        assert atom.match(Tup("link", "a", "b", 3), {}) is None

    def test_instantiate_with_expr(self):
        head = Atom("sum", X, Expr(lambda b: b["K"] + 1, "K+1"))
        tup = head.instantiate({"X": "a", "K": 41})
        assert tup == Tup("sum", "a", 42)

    def test_instantiate_unbound_raises(self):
        with pytest.raises(ConfigurationError):
            Atom("r", X, Y).instantiate({"X": "a"})


class TestRuleValidation:
    def test_body_must_be_colocated(self):
        with pytest.raises(ConfigurationError):
            Rule("bad", Atom("h", X), [Atom("a", X), Atom("b", Y)])

    def test_empty_body_rejected(self):
        with pytest.raises(ConfigurationError):
            Rule("bad", Atom("h", X), [])

    def test_aggregate_var_must_be_in_head(self):
        with pytest.raises(ConfigurationError):
            AggregateRule("bad", Atom("h", X), [Atom("b", X, K)],
                          agg_var=K, func="min")

    def test_aggregate_unknown_func(self):
        with pytest.raises(ConfigurationError):
            AggregateRule("bad", Atom("h", X, K), [Atom("b", X, K)],
                          agg_var=K, func="median")

    def test_maybe_rule_appends_choice_token(self):
        rule = MaybeRule("M", Atom("h", X, Y), [Atom("b", X, Y)])
        assert rule.body[-1].relation == "__choice__M"


class TestTupleStore:
    def test_base_refcounting(self):
        store = TupleStore("n")
        t = Tup("r", "n", 1)
        assert store.add_base(t, 0.0) is True
        assert store.add_base(t, 1.0) is False   # refcount bump, no appear
        assert store.remove_base(t) is False     # still one ref
        assert store.remove_base(t) is True      # now gone
        assert not store.present(t)

    def test_remove_never_inserted(self):
        store = TupleStore("n")
        assert store.remove_base(Tup("r", "n", 1)) is False

    def test_belief_per_peer_counting(self):
        store = TupleStore("n")
        t = Tup("r", "n", 1)
        assert store.add_belief(t, "p1", 0.0) is True
        assert store.remove_belief(t, "p2") is False  # wrong peer
        assert store.remove_belief(t, "p1") is True

    def test_derivation_instances_dedupe(self):
        store = TupleStore("n")
        head = Tup("h", "n", 1)
        support = (Tup("b", "n", 1),)
        inst = DerivationInstance("R", support)
        assert store.add_derivation(head, inst, 0.0) == (True, True)
        assert store.add_derivation(head, inst, 1.0) == (False, False)

    def test_remove_by_support_cascade_info(self):
        store = TupleStore("n")
        b = Tup("b", "n", 1)
        head = Tup("h", "n", 1)
        store.add_derivation(head, DerivationInstance("R", (b,)), 0.0)
        removed = store.remove_derivations_supported_by(b)
        assert removed == [(head, DerivationInstance("R", (b,)), True)]
        assert not store.present(head)

    def test_visible_excludes_remote_loc(self):
        store = TupleStore("n")
        store.add_base(Tup("r", "m", 1), 0.0)   # located elsewhere
        store.add_base(Tup("r", "n", 2), 0.0)
        assert store.visible("r") == [Tup("r", "n", 2)]

    def test_snapshot_restore_roundtrip(self):
        store = TupleStore("n")
        b = Tup("b", "n", 1)
        store.add_base(b, 0.5)
        store.add_belief(Tup("x", "n", 2), "p", 0.7)
        head = Tup("h", "n", 3)
        store.add_derivation(head, DerivationInstance("R", (b,)), 0.9)
        snap = store.snapshot()
        fresh = TupleStore("n")
        fresh.restore(snap)
        assert fresh.present(b) and fresh.present(head)
        assert fresh.believed(Tup("x", "n", 2))
        assert fresh.appeared_at(b) == 0.5


def _drive(apps, outputs, t):
    for out in outputs:
        if isinstance(out, Snd):
            m = out.msg
            _drive(apps, apps[m.dst].handle_receive(m, t), t)


class TestEngine:
    def _single(self, rules):
        return DatalogApp("n", Program(rules))

    def test_simple_derivation_outputs(self):
        app = self._single([
            Rule("R", Atom("h", X, Y), [Atom("b", X, Y)]),
        ])
        outs = app.handle_insert(Tup("b", "n", 1), 0.0)
        ders = [o for o in outs if isinstance(o, Der)]
        assert ders and ders[0].tup == Tup("h", "n", 1)
        assert ders[0].support == (Tup("b", "n", 1),)

    def test_underivation_on_delete(self):
        app = self._single([Rule("R", Atom("h", X, Y), [Atom("b", X, Y)])])
        app.handle_insert(Tup("b", "n", 1), 0.0)
        outs = app.handle_delete(Tup("b", "n", 1), 1.0)
        unds = [o for o in outs if isinstance(o, Und)]
        assert unds and unds[0].tup == Tup("h", "n", 1)

    def test_join_two_atoms(self):
        app = self._single([
            Rule("R", Atom("h", X, Z),
                 [Atom("e", X, Y), Atom("f", X, Y, Z)]),
        ])
        app.handle_insert(Tup("e", "n", "k"), 0.0)
        outs = app.handle_insert(Tup("f", "n", "k", "v"), 1.0)
        assert any(isinstance(o, Der) and o.tup == Tup("h", "n", "v")
                   for o in outs)

    def test_guard_blocks_derivation(self):
        app = self._single([
            Rule("R", Atom("h", X, K), [Atom("b", X, K)],
                 guards=[lambda b: b["K"] > 10]),
        ])
        assert not app.handle_insert(Tup("b", "n", 5), 0.0)
        outs = app.handle_insert(Tup("b", "n", 15), 1.0)
        assert any(isinstance(o, Der) for o in outs)

    def test_refcount_no_duplicate_der(self):
        # Two different bodies deriving the same head: only the first
        # surfaces as Der, and the head survives losing one of them.
        app = self._single([
            Rule("R1", Atom("h", X), [Atom("a", X)]),
            Rule("R2", Atom("h", X), [Atom("b", X)]),
        ])
        outs1 = app.handle_insert(Tup("a", "n"), 0.0)
        assert sum(isinstance(o, Der) for o in outs1) == 1
        outs2 = app.handle_insert(Tup("b", "n"), 1.0)
        assert sum(isinstance(o, Der) for o in outs2) == 0
        outs3 = app.handle_delete(Tup("a", "n"), 2.0)
        assert sum(isinstance(o, Und) for o in outs3) == 0
        assert app.has_tuple(Tup("h", "n"))
        outs4 = app.handle_delete(Tup("b", "n"), 3.0)
        assert sum(isinstance(o, Und) for o in outs4) == 1

    def test_remote_head_sends_messages(self):
        app = self._single([
            Rule("R", Atom("h", Y, X), [Atom("b", X, Y)]),
        ])
        outs = app.handle_insert(Tup("b", "n", "m"), 0.0)
        snds = [o for o in outs if isinstance(o, Snd)]
        assert len(snds) == 1
        assert snds[0].msg.polarity == PLUS
        assert snds[0].msg.dst == "m"
        outs2 = app.handle_delete(Tup("b", "n", "m"), 1.0)
        snds2 = [o for o in outs2 if isinstance(o, Snd)]
        assert snds2 and snds2[0].msg.polarity == MINUS

    def test_belief_triggers_rules(self):
        app = self._single([
            Rule("R", Atom("h", X, K), [Atom("remote", X, K)]),
        ])
        msg = Msg(PLUS, Tup("remote", "n", 7), "peer", "n", 0, 0.0)
        outs = app.handle_receive(msg, 0.5)
        assert any(isinstance(o, Der) and o.tup == Tup("h", "n", 7)
                   for o in outs)
        gone = Msg(MINUS, Tup("remote", "n", 7), "peer", "n", 1, 1.0)
        outs2 = app.handle_receive(gone, 1.5)
        assert any(isinstance(o, Und) for o in outs2)

    def test_transitive_cascade(self):
        app = self._single([
            Rule("R1", Atom("m", X, K), [Atom("a", X, K)]),
            Rule("R2", Atom("h", X, K), [Atom("m", X, K)]),
        ])
        outs = app.handle_insert(Tup("a", "n", 1), 0.0)
        der_tuples = [o.tup.relation for o in outs if isinstance(o, Der)]
        assert der_tuples == ["m", "h"]

    def test_deterministic_output_order(self):
        def fresh():
            return self._single([
                Rule("R", Atom("h", X, Y, Z),
                     [Atom("a", X, Y), Atom("b", X, Z)]),
            ])
        def run(app):
            app.handle_insert(Tup("b", "n", 1), 0.0)
            app.handle_insert(Tup("b", "n", 2), 0.0)
            return [repr(o) for o in app.handle_insert(Tup("a", "n", 9), 1.0)]
        assert run(fresh()) == run(fresh())


class TestAggregates:
    def _minapp(self):
        return DatalogApp("n", Program([
            AggregateRule("A", Atom("best", X, K), [Atom("c", X, Z, K)],
                          agg_var=K, func="min"),
        ]))

    def test_min_tracks_insertions(self):
        app = self._minapp()
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        assert app.has_tuple(Tup("best", "n", 5))
        outs = app.handle_insert(Tup("c", "n", "q", 3), 1.0)
        assert any(isinstance(o, Und) and o.tup == Tup("best", "n", 5)
                   for o in outs)
        assert any(isinstance(o, Der) and o.tup == Tup("best", "n", 3)
                   for o in outs)

    def test_min_tracks_deletion_of_witness(self):
        app = self._minapp()
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        app.handle_insert(Tup("c", "n", "q", 3), 1.0)
        outs = app.handle_delete(Tup("c", "n", "q", 3), 2.0)
        assert app.has_tuple(Tup("best", "n", 5))
        assert any(isinstance(o, Der) and o.tup == Tup("best", "n", 5)
                   for o in outs)

    def test_empty_group_removes_head(self):
        app = self._minapp()
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        app.handle_delete(Tup("c", "n", "p", 5), 1.0)
        assert not app.has_tuple(Tup("best", "n", 5))

    def test_same_value_witness_change_is_silent(self):
        app = self._minapp()
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        outs = app.handle_insert(Tup("c", "n", "q", 5), 1.0)
        assert not any(isinstance(o, (Der, Und)) for o in outs)
        outs2 = app.handle_delete(Tup("c", "n", "p", 5), 2.0)
        # best(5) still holds via the q witness; no der/und churn.
        assert not any(isinstance(o, (Der, Und)) for o in outs2)
        assert app.has_tuple(Tup("best", "n", 5))

    def test_sum_aggregate(self):
        app = DatalogApp("n", Program([
            AggregateRule("S", Atom("total", X, K), [Atom("c", X, Z, K)],
                          agg_var=K, func="sum"),
        ]))
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        app.handle_insert(Tup("c", "n", "q", 3), 1.0)
        assert app.has_tuple(Tup("total", "n", 8))

    def test_count_aggregate(self):
        app = DatalogApp("n", Program([
            AggregateRule("C", Atom("cnt", X, K), [Atom("c", X, Z, K)],
                          agg_var=K, func="count"),
        ]))
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        app.handle_insert(Tup("c", "n", "q", 3), 1.0)
        assert app.has_tuple(Tup("cnt", "n", 2))

    def _guarded(self):
        return DatalogApp("n", Program([
            AggregateRule("G", Atom("best", X, K), [Atom("c", X, Z, K)],
                          agg_var=K, func="min",
                          guards=[Guard(lambda b: b["K"] < 100,
                                        vars=(K,), label="K<100")]),
        ]))

    def test_guard_excludes_tuples_from_group(self):
        app = self._guarded()
        app.handle_insert(Tup("c", "n", "p", 500), 0.0)  # guard rejects
        assert not app.has_tuple(Tup("best", "n", 500))
        app.handle_insert(Tup("c", "n", "q", 7), 1.0)
        assert app.has_tuple(Tup("best", "n", 7))
        app.handle_insert(Tup("c", "n", "r", 3), 2.0)
        assert app.has_tuple(Tup("best", "n", 3))

    def test_guard_rejected_change_emits_nothing(self):
        app = self._guarded()
        app.handle_insert(Tup("c", "n", "q", 7), 0.0)
        outs = app.handle_insert(Tup("c", "n", "p", 500), 1.0)
        assert outs == []
        outs = app.handle_delete(Tup("c", "n", "p", 500), 2.0)
        assert outs == []
        assert app.has_tuple(Tup("best", "n", 7))

    def test_guard_rejected_change_skips_recompute(self):
        # Regression for the dead guard check in _mark_dirty: a tuple the
        # guard rejects was never a group member, so it must not even
        # schedule a recompute.
        app = self._guarded()
        app.handle_insert(Tup("c", "n", "q", 7), 0.0)
        recomputes = []
        original = app._recompute_group
        app._recompute_group = lambda key, t, wl: (
            recomputes.append(key), original(key, t, wl))
        app.handle_insert(Tup("c", "n", "p", 500), 1.0)
        app.handle_delete(Tup("c", "n", "p", 500), 2.0)
        assert recomputes == []
        app.handle_insert(Tup("c", "n", "r", 3), 3.0)
        assert recomputes  # a passing tuple still recomputes

    def test_worse_minmax_candidate_skips_recompute(self):
        app = self._minapp()
        app.handle_insert(Tup("c", "n", "p", 5), 0.0)
        recomputes = []
        original = app._recompute_group
        app._recompute_group = lambda key, t, wl: (
            recomputes.append(key), original(key, t, wl))
        app.handle_insert(Tup("c", "n", "q", 9), 1.0)   # worse than 5
        app.handle_delete(Tup("c", "n", "q", 9), 2.0)   # not the witness
        assert recomputes == []
        app.handle_insert(Tup("c", "n", "r", 2), 3.0)   # improves: recompute
        assert recomputes
        assert app.has_tuple(Tup("best", "n", 2))

    def test_custom_key(self):
        app = DatalogApp("n", Program([
            AggregateRule("P", Atom("best", X, K), [Atom("r", X, K)],
                          agg_var=K, func="min",
                          key=lambda path: (len(path), path)),
        ]))
        app.handle_insert(Tup("r", "n", ("a", "b", "c")), 0.0)
        app.handle_insert(Tup("r", "n", ("z", "w")), 1.0)  # shorter wins
        assert app.has_tuple(Tup("best", "n", ("z", "w")))


class TestMaybeRules:
    def _app(self):
        return DatalogApp("n", Program([
            MaybeRule("M", Atom("sel", X, K), [Atom("opt", X, K)]),
        ]))

    def test_body_alone_does_not_derive(self):
        app = self._app()
        app.handle_insert(Tup("opt", "n", 1), 0.0)
        assert not app.has_tuple(Tup("sel", "n", 1))

    def test_choice_token_activates(self):
        app = self._app()
        app.handle_insert(Tup("opt", "n", 1), 0.0)
        outs = app.handle_insert(choice_tuple("M", "n", 1), 1.0)
        assert any(isinstance(o, Der) and o.tup == Tup("sel", "n", 1)
                   for o in outs)

    def test_token_without_body_does_not_derive(self):
        app = self._app()
        app.handle_insert(choice_tuple("M", "n", 1), 0.0)
        assert not app.has_tuple(Tup("sel", "n", 1))

    def test_retraction_via_token_delete(self):
        app = self._app()
        app.handle_insert(Tup("opt", "n", 1), 0.0)
        app.handle_insert(choice_tuple("M", "n", 1), 1.0)
        outs = app.handle_delete(choice_tuple("M", "n", 1), 2.0)
        assert any(isinstance(o, Und) for o in outs)
        assert not app.has_tuple(Tup("sel", "n", 1))

    def test_retraction_via_body_disappearance(self):
        app = self._app()
        app.handle_insert(Tup("opt", "n", 1), 0.0)
        app.handle_insert(choice_tuple("M", "n", 1), 1.0)
        app.handle_delete(Tup("opt", "n", 1), 2.0)
        assert not app.has_tuple(Tup("sel", "n", 1))


class TestSnapshotRestore:
    def test_engine_snapshot_roundtrip(self):
        program = Program([
            Rule("R", Atom("h", X, K), [Atom("b", X, K)]),
            AggregateRule("A", Atom("best", X, K), [Atom("c", X, Z, K)],
                          agg_var=K, func="min"),
        ])
        app = DatalogApp("n", program)
        app.handle_insert(Tup("b", "n", 1), 0.0)
        app.handle_insert(Tup("c", "n", "z", 5), 0.5)
        snap = app.snapshot()
        fresh = DatalogApp("n", program)
        fresh.restore(snap)
        assert fresh.has_tuple(Tup("h", "n", 1))
        assert fresh.has_tuple(Tup("best", "n", 5))
        # Behavior after restore matches continued execution.
        a = app.handle_insert(Tup("c", "n", "y", 2), 1.0)
        b = fresh.handle_insert(Tup("c", "n", "y", 2), 1.0)
        assert [repr(o) for o in a] == [repr(o) for o in b]
