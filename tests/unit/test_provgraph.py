"""Provenance graph: vertex identity, colors, and the ∪*/|i/⊆* algebra."""

import pytest

from repro.model import Msg, Tup, PLUS
from repro.provgraph.graph import ProvenanceGraph
from repro.provgraph.vertices import (
    Vertex, Color,
    APPEAR, EXIST, SEND, RECEIVE, BELIEVE, DERIVE, INSERT,
)


def _tup(i=1):
    return Tup("r", "n", i)


def _msg(seq=0, tup=None):
    return Msg(PLUS, tup or _tup(), "a", "b", seq, 1.0)


class TestVertexIdentity:
    def test_equal_keys_equal_vertices(self):
        a = Vertex(APPEAR, "n", tup=_tup(), t=1.0)
        b = Vertex(APPEAR, "n", tup=_tup(), t=1.0)
        assert a == b and hash(a) == hash(b)

    def test_time_distinguishes(self):
        a = Vertex(APPEAR, "n", tup=_tup(), t=1.0)
        b = Vertex(APPEAR, "n", tup=_tup(), t=2.0)
        assert a != b

    def test_interval_end_not_part_of_identity(self):
        a = Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=None)
        b = Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=5.0)
        assert a == b

    def test_send_keyed_by_full_message(self):
        same_id_other_content = Msg(PLUS, _tup(99), "a", "b", 0, 1.0)
        a = Vertex(SEND, "a", msg=_msg(0), t=1.0, peer="b")
        b = Vertex(SEND, "a", msg=same_id_other_content, t=1.0, peer="b")
        assert a != b

    def test_rule_distinguishes_derive(self):
        a = Vertex(DERIVE, "n", tup=_tup(), rule="R1", t=1.0)
        b = Vertex(DERIVE, "n", tup=_tup(), rule="R2", t=1.0)
        assert a != b

    def test_close_interval_once(self):
        v = Vertex(EXIST, "n", tup=_tup(), t=1.0)
        v.close_interval(2.0)
        with pytest.raises(ValueError):
            v.close_interval(3.0)

    def test_non_interval_cannot_close(self):
        with pytest.raises(ValueError):
            Vertex(APPEAR, "n", tup=_tup(), t=1.0).close_interval(2.0)

    def test_describe_is_paper_notation(self):
        v = Vertex(EXIST, "c", tup=Tup("bestCost", "c", "d", 5), t=1.0)
        assert v.describe().startswith("EXIST(c, bestCost(@c, 'd', 5)")


class TestColors:
    def test_dominance_order(self):
        assert Color.dominant(Color.RED, Color.BLACK) == Color.RED
        assert Color.dominant(Color.BLACK, Color.YELLOW) == Color.BLACK
        assert Color.dominant(Color.YELLOW, Color.RED) == Color.RED
        assert Color.dominant(Color.YELLOW, Color.YELLOW) == Color.YELLOW


class TestGraphContainer:
    def test_add_vertex_idempotent(self):
        g = ProvenanceGraph()
        a = g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        b = g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        assert a is b and len(g) == 1

    def test_open_interval_index(self):
        g = ProvenanceGraph()
        v = g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0))
        assert g.open_interval(EXIST, "n", _tup()) is v
        g.close_interval(v, 2.0)
        assert g.open_interval(EXIST, "n", _tup()) is None

    def test_edges_and_adjacency(self):
        g = ProvenanceGraph()
        a = g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        b = g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0))
        g.add_edge(a, b)
        assert g.successors(a) == [b]
        assert g.predecessors(b) == [a]
        g.add_edge(a, b)  # duplicate edges collapse
        assert g.edge_count() == 1

    def test_find_exist_at(self):
        g = ProvenanceGraph()
        v = g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=3.0))
        assert g.find_exist_at("n", _tup(), 2.0) is v
        assert g.find_exist_at("n", _tup(), 4.0) is None


class TestUnion:
    def test_union_merges_vertices(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        g1.add_vertex(Vertex(APPEAR, "n", tup=_tup(1), t=1.0))
        g2.add_vertex(Vertex(APPEAR, "n", tup=_tup(2), t=1.0))
        u = g1.union(g2)
        assert len(u) == 2

    def test_union_takes_dominant_color(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        g1.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0,
                             color=Color.BLACK))
        g2.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0,
                             color=Color.RED))
        u = g1.union(g2)
        assert u.vertices()[0].color == Color.RED

    def test_union_intersects_intervals(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        g1.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=None))
        g2.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=4.0))
        u = g1.union(g2)
        assert u.vertices()[0].t_end == 4.0

    def test_union_keeps_edges(self):
        g1 = ProvenanceGraph()
        a = g1.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        b = g1.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0))
        g1.add_edge(a, b)
        u = g1.union(ProvenanceGraph())
        assert u.edge_count() == 1

    def test_union_does_not_mutate_operands(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        v = g1.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=None))
        g2.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=4.0))
        g1.union(g2)
        assert v.t_end is None


class TestProjection:
    def test_projection_keeps_host_vertices(self):
        g = ProvenanceGraph()
        g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        g.add_vertex(Vertex(APPEAR, "m", tup=Tup("r", "m", 1), t=1.0))
        p = g.project("n")
        assert all(v.node == "n" for v in p.vertices())

    def test_projection_includes_connected_remote_send_as_yellow(self):
        g = ProvenanceGraph()
        msg = _msg()
        send = g.add_vertex(Vertex(SEND, "a", msg=msg, t=1.0, peer="b"))
        recv = g.add_vertex(Vertex(RECEIVE, "b", msg=msg, t=1.2, peer="a"))
        g.add_edge(send, recv)
        p = g.project("b")
        sends = [v for v in p.vertices() if v.vtype == SEND]
        assert sends and sends[0].color == Color.YELLOW

    def test_projection_union_reconstructs_vertices(self):
        g = ProvenanceGraph()
        g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        g.add_vertex(Vertex(APPEAR, "m", tup=Tup("r", "m", 1), t=1.0))
        u = g.project("n").union(g.project("m"))
        assert {v.key() for v in u.vertices()} == \
            {v.key() for v in g.vertices()}


class TestSubgraph:
    def test_reflexive(self):
        g = ProvenanceGraph()
        g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        assert g.is_subgraph_of(g)

    def test_missing_vertex(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        g1.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
        assert not g1.is_subgraph_of(g2)
        assert g2.is_subgraph_of(g1)

    def test_color_cannot_downgrade(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        g1.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0,
                             color=Color.RED))
        g2.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0,
                             color=Color.BLACK))
        assert not g1.is_subgraph_of(g2)
        # Yellow may upgrade to black.
        g3, g4 = ProvenanceGraph(), ProvenanceGraph()
        g3.add_vertex(Vertex(INSERT, "n", tup=_tup(), t=1.0,
                             color=Color.YELLOW))
        g4.add_vertex(Vertex(INSERT, "n", tup=_tup(), t=1.0,
                             color=Color.BLACK))
        assert g3.is_subgraph_of(g4)

    def test_interval_may_shrink_but_not_grow(self):
        open_g, closed_g = ProvenanceGraph(), ProvenanceGraph()
        open_g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=None))
        closed_g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0, t_end=9.0))
        assert open_g.is_subgraph_of(closed_g)
        assert not closed_g.is_subgraph_of(open_g)

    def test_edge_subset_required(self):
        g1, g2 = ProvenanceGraph(), ProvenanceGraph()
        for g in (g1, g2):
            a = g.add_vertex(Vertex(APPEAR, "n", tup=_tup(), t=1.0))
            b = g.add_vertex(Vertex(EXIST, "n", tup=_tup(), t=1.0))
        a1 = g1.get(a.key())
        b1 = g1.get(b.key())
        g1.add_edge(a1, b1)
        assert not g1.is_subgraph_of(g2)
        assert g2.is_subgraph_of(g1)
