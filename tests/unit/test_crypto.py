"""Crypto substrate: RSA, certificates, hash chains, Merkle trees."""

import pytest

from repro.crypto.hashing import HashChain, GENESIS_HASH, content_digest
from repro.crypto.keys import CertificateAuthority, NodeIdentity
from repro.crypto.merkle import MerkleTree, EMPTY_ROOT
from repro.crypto.rsa import generate_keypair
from repro.util.errors import AuthenticationError


class TestRsa:
    def test_sign_verify_roundtrip(self):
        key = generate_keypair(bits=256, seed=1)
        sig = key.sign(b"hello")
        assert key.verify(b"hello", sig)

    def test_tampered_message_rejected(self):
        key = generate_keypair(bits=256, seed=1)
        sig = key.sign(b"hello")
        assert not key.verify(b"hellp", sig)

    def test_tampered_signature_rejected(self):
        key = generate_keypair(bits=256, seed=1)
        sig = bytearray(key.sign(b"hello"))
        sig[0] ^= 0xFF
        assert not key.verify(b"hello", bytes(sig))

    def test_wrong_key_rejected(self):
        a = generate_keypair(bits=256, seed=1)
        b = generate_keypair(bits=256, seed=2)
        assert not b.verify(b"hello", a.sign(b"hello"))

    def test_deterministic_keygen(self):
        a = generate_keypair(bits=256, seed=7)
        b = generate_keypair(bits=256, seed=7)
        assert (a.n, a.e) == (b.n, b.e)

    def test_different_seeds_different_keys(self):
        a = generate_keypair(bits=256, seed=7)
        b = generate_keypair(bits=256, seed=8)
        assert a.n != b.n

    def test_public_only_cannot_sign(self):
        key = generate_keypair(bits=256, seed=1).public_only()
        with pytest.raises(AuthenticationError):
            key.sign(b"x")

    def test_public_only_can_verify(self):
        key = generate_keypair(bits=256, seed=1)
        sig = key.sign(b"payload")
        assert key.public_only().verify(b"payload", sig)

    def test_modulus_size(self):
        key = generate_keypair(bits=512, seed=3)
        assert key.bits == 512

    def test_fingerprint_stable(self):
        key = generate_keypair(bits=256, seed=4)
        assert key.fingerprint() == key.public_only().fingerprint()

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(bits=64)

    def test_wrong_length_signature_rejected(self):
        key = generate_keypair(bits=256, seed=1)
        assert not key.verify(b"hello", b"\x00" * 7)


class TestCertificates:
    def test_issue_and_verify(self):
        ca = CertificateAuthority(key_bits=256, seed=9)
        identity = NodeIdentity("n1", ca, key_bits=256)
        assert ca.verify(identity.certificate)

    def test_forged_certificate_rejected(self):
        ca = CertificateAuthority(key_bits=256, seed=9)
        identity = NodeIdentity("n1", ca, key_bits=256)
        identity.certificate.node_id = "mallory"
        with pytest.raises(AuthenticationError):
            ca.verify(identity.certificate)

    def test_identity_sign_verify_counted(self):
        ca = CertificateAuthority(key_bits=256, seed=9)
        identity = NodeIdentity("n1", ca, key_bits=256)
        sig = identity.sign(("payload", 1))
        assert identity.verify(identity.keypair.public_only(),
                               ("payload", 1), sig)
        assert identity.counter.signatures == 1
        assert identity.counter.verifications == 1


class TestHashChain:
    def test_genesis(self):
        chain = HashChain()
        assert chain.head() == GENESIS_HASH
        assert len(chain) == 0

    def test_append_changes_head(self):
        chain = HashChain()
        h1 = chain.append(1.0, "ins", content_digest(("x",)))
        assert chain.head() == h1
        assert len(chain) == 1

    def test_order_sensitivity(self):
        a, b = HashChain(), HashChain()
        a.append(1.0, "ins", content_digest(("x",)))
        a.append(2.0, "ins", content_digest(("y",)))
        b.append(1.0, "ins", content_digest(("y",)))
        b.append(2.0, "ins", content_digest(("x",)))
        assert a.head() != b.head()

    def test_hash_at_indexing(self):
        chain = HashChain()
        h1 = chain.append(1.0, "ins", content_digest(("x",)))
        h2 = chain.append(2.0, "del", content_digest(("x",)))
        assert chain.hash_at(0) == GENESIS_HASH
        assert chain.hash_at(1) == h1
        assert chain.hash_at(2) == h2

    def test_type_field_is_committed(self):
        a, b = HashChain(), HashChain()
        a.append(1.0, "ins", content_digest(("x",)))
        b.append(1.0, "del", content_digest(("x",)))
        assert a.head() != b.head()

    def test_timestamp_is_committed(self):
        a, b = HashChain(), HashChain()
        a.append(1.0, "ins", content_digest(("x",)))
        b.append(2.0, "ins", content_digest(("x",)))
        assert a.head() != b.head()


class TestMerkle:
    def test_empty_tree(self):
        assert MerkleTree([]).root() == EMPTY_ROOT

    def test_single_leaf_proof(self):
        tree = MerkleTree([("t", 1)])
        assert MerkleTree.verify_proof(("t", 1), tree.proof(0), tree.root())

    def test_all_leaves_provable(self):
        leaves = [("tuple", i) for i in range(9)]  # odd count
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(leaf, proof, tree.root())

    def test_wrong_leaf_rejected(self):
        leaves = [("tuple", i) for i in range(8)]
        tree = MerkleTree(leaves)
        proof = tree.proof(3)
        assert not MerkleTree.verify_proof(("tuple", 4), proof, tree.root())

    def test_wrong_root_rejected(self):
        leaves = [("tuple", i) for i in range(8)]
        tree = MerkleTree(leaves)
        other = MerkleTree(leaves + [("tuple", 99)])
        assert not MerkleTree.verify_proof(
            ("tuple", 3), tree.proof(3), other.root()
        )

    def test_root_depends_on_order(self):
        a = MerkleTree([1, 2, 3])
        b = MerkleTree([3, 2, 1])
        assert a.root() != b.root()

    def test_out_of_range_proof(self):
        with pytest.raises(IndexError):
            MerkleTree([1]).proof(5)
