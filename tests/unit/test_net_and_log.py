"""Simulator, tamper-evident log, authenticators, commitment wire formats."""

import pytest

from repro.crypto.keys import CertificateAuthority, NodeIdentity
from repro.model import Msg, Tup, PLUS
from repro.net.simulator import Simulator
from repro.snp.commitment import (
    build_batch, verify_batch, snd_entry_content,
)
from repro.snp.evidence import (
    Authenticator, EvidenceStore, sign_authenticator, verify_authenticator,
)
from repro.snp.log import NodeLog, INS, SND, CHK
from repro.util.errors import AuthenticationError


class TestSimulator:
    def test_schedule_order(self):
        sim = Simulator(seed=0)
        order = []
        sim.schedule(0.2, lambda: order.append("b"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.run()
        assert order == ["a", "b"]

    def test_tie_break_is_fifo(self):
        sim = Simulator(seed=0)
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_determinism_across_runs(self):
        def run():
            sim = Simulator(seed=5)
            got = []
            for i in range(20):
                sim.schedule(sim.link_delay(), lambda i=i: got.append(i))
            sim.run()
            return got, sim.now
        assert run() == run()

    def test_run_until(self):
        sim = Simulator(seed=0)
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [1] and sim.now == 2.0

    def test_clock_skew_bounded(self):
        sim = Simulator(seed=3, delta_clock=0.02)
        for n in range(10):
            clock = sim.register_clock(f"n{n}")
            assert abs(clock.skew) <= 0.01

    def test_link_delay_bounds(self):
        sim = Simulator(seed=3, t_prop=0.05, min_delay=0.005)
        for _ in range(100):
            d = sim.link_delay()
            assert 0.005 <= d <= 0.05

    def test_negative_schedule_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)


class TestNodeLog:
    def test_append_assigns_indices_and_hashes(self):
        log = NodeLog("n")
        e1 = log.append(1.0, INS, ("x",))
        e2 = log.append(2.0, INS, ("y",))
        assert (e1.index, e2.index) == (1, 2)
        assert e1.entry_hash != e2.entry_hash
        assert log.head_hash() == e2.entry_hash

    def test_hash_before(self):
        log = NodeLog("n")
        e1 = log.append(1.0, INS, ("x",))
        assert log.hash_before(1) == "0" * 64
        assert log.hash_before(2) == e1.entry_hash

    def test_segment_slicing(self):
        log = NodeLog("n")
        for i in range(5):
            log.append(float(i), INS, (i,))
        seg = log.segment(2, 4)
        assert [e.index for e in seg] == [2, 3, 4]

    def test_unknown_entry_type_rejected(self):
        log = NodeLog("n")
        with pytest.raises(ValueError):
            log.append(1.0, "bogus", ())

    def test_checkpoint_entry(self):
        log = NodeLog("n")
        tup = Tup("r", "n", 1)
        entry = log.append_checkpoint(
            1.0, {"seq": {}}, [(tup, 0.5)], []
        )
        assert entry.entry_type == CHK
        assert log.last_checkpoint_before(2) is entry
        assert entry.aux["extant"] == [(tup, 0.5)]

    def test_last_checkpoint_before_none(self):
        log = NodeLog("n")
        log.append(1.0, INS, ("x",))
        assert log.last_checkpoint_before(1) is None


class TestLogTruncation:
    """Checkpoint GC at the log layer: truncate_below keeps the tombstone
    anchor so indexes, segments and chain hashes at or above the floor
    behave exactly as before truncation."""

    def _log_with_checkpoint_at(self, chk_index, total=8):
        log = NodeLog("n")
        for i in range(1, chk_index):
            log.append(float(i), INS, (i,))
        log.append_checkpoint(float(chk_index), {"seq": {}}, [], [])
        for i in range(chk_index + 1, total + 1):
            log.append(float(i), INS, (i,))
        return log

    def test_truncate_reclaims_bytes_and_keeps_logical_indexes(self):
        log = self._log_with_checkpoint_at(4)
        before = log.size_bytes()
        pre_head = log.head_hash()
        reclaimed = log.truncate_below(4)
        assert reclaimed > 0
        assert log.size_bytes() == before - reclaimed
        assert log.first_index == 4 and log.truncated
        assert len(log) == 8                      # head index is logical
        assert log.entry(4).entry_type == CHK
        assert log.entry(8).index == 8
        assert log.head_hash() == pre_head
        assert log.discarded_entries == 3

    def test_tombstone_anchor_survives(self):
        log = self._log_with_checkpoint_at(4)
        anchor = log.hash_before(4)
        seg_hashes = [e.entry_hash for e in log.segment(4, 8)]
        log.truncate_below(4)
        assert log.hash_before(4) == anchor
        assert [e.entry_hash for e in log.segment(4, 8)] == seg_hashes
        with pytest.raises(IndexError):
            log.hash_before(3)
        with pytest.raises(IndexError):
            log.entry(3)
        with pytest.raises(IndexError):
            log.segment(2, 8)

    def test_append_continues_past_truncation(self):
        log = self._log_with_checkpoint_at(4)
        log.truncate_below(4)
        entry = log.append(9.0, INS, ("post",))
        assert entry.index == 9
        assert log.entry(9) is entry
        # The chain keeps folding from the same head it had before.
        from repro.crypto.hashing import chain_hash
        assert entry.entry_hash == chain_hash(
            log.entry(8).entry_hash, 9.0, INS, entry.content_hash
        )

    def test_truncate_below_non_checkpoint_rejected(self):
        log = self._log_with_checkpoint_at(4)
        with pytest.raises(ValueError, match="checkpoint"):
            log.truncate_below(5)
        with pytest.raises(ValueError, match="head"):
            log.truncate_below(99)

    def test_truncate_at_or_below_base_is_a_noop(self):
        log = self._log_with_checkpoint_at(4)
        assert log.truncate_below(1) == 0
        log.truncate_below(4)
        assert log.truncate_below(4) == 0
        assert log.truncate_below(2) == 0

    def test_last_checkpoint_before_respects_truncation(self):
        log = self._log_with_checkpoint_at(4)
        log.truncate_below(4)
        assert log.last_checkpoint_before(8).index == 4
        assert log.last_checkpoint_before(3) is None


class TestAuthenticators:
    def _identity(self, name="n1"):
        ca = CertificateAuthority(key_bits=256, seed=1)
        return NodeIdentity(name, ca, key_bits=256)

    def test_sign_and_verify(self):
        ident = self._identity()
        auth = sign_authenticator(ident, 3, 1.0, "ab" * 32)
        assert verify_authenticator(ident, ident.keypair.public_only(), auth)

    def test_forged_authenticator_rejected(self):
        ident = self._identity()
        auth = sign_authenticator(ident, 3, 1.0, "ab" * 32)
        auth.index = 4
        with pytest.raises(AuthenticationError):
            verify_authenticator(ident, ident.keypair.public_only(), auth)

    def test_evidence_store_best(self):
        store = EvidenceStore()
        store.add(Authenticator("n", 3, 1.0, "h3", b"s"))
        store.add(Authenticator("n", 7, 2.0, "h7", b"s"))
        store.add(Authenticator("m", 1, 1.0, "h1", b"s"))
        assert store.best_for_node("n").index == 7
        assert store.best_for_node("zzz") is None
        assert len(store) == 3


class TestWireBatch:
    def _setup(self):
        ca = CertificateAuthority(key_bits=256, seed=1)
        ident = NodeIdentity("a", ca, key_bits=256)
        verifier = NodeIdentity("b", ca, key_bits=256)
        log = NodeLog("a")
        return ident, verifier, log

    def _queue(self, log, ident, n=2, with_gap=False):
        queued = []
        for i in range(n):
            if with_gap and i == 1:
                log.append(1.0 + i, INS, ("gap", i))
            msg = Msg(PLUS, Tup("r", "b", i), "a", "b", i, 1.0 + i)
            entry = log.append(1.0 + i, SND, snd_entry_content(msg),
                               aux={"msg": msg})
            queued.append((msg, entry))
        return queued

    def test_roundtrip_verification(self):
        ident, verifier, log = self._setup()
        queued = self._queue(log, ident)
        batch = build_batch(log, ident, "b", queued)
        assert verify_batch(batch, verifier,
                            ident.keypair.public_only(),
                            local_time=2.0, plausibility_window=10.0)

    def test_gap_entries_verified_by_digest(self):
        ident, verifier, log = self._setup()
        queued = self._queue(log, ident, with_gap=True)
        batch = build_batch(log, ident, "b", queued)
        assert len(batch.gaps) == 1
        assert verify_batch(batch, verifier, ident.keypair.public_only(),
                            2.0, 10.0)

    def test_tampered_message_rejected(self):
        ident, verifier, log = self._setup()
        queued = self._queue(log, ident)
        batch = build_batch(log, ident, "b", queued)
        msg, index, t = batch.msgs[0]
        batch.msgs[0] = (Msg(PLUS, Tup("r", "b", 999), "a", "b", 0, 1.0),
                         index, t)
        with pytest.raises(AuthenticationError):
            verify_batch(batch, verifier, ident.keypair.public_only(),
                         2.0, 10.0)

    def test_implausible_timestamp_rejected(self):
        ident, verifier, log = self._setup()
        queued = self._queue(log, ident)
        batch = build_batch(log, ident, "b", queued)
        with pytest.raises(AuthenticationError):
            verify_batch(batch, verifier, ident.keypair.public_only(),
                         local_time=500.0, plausibility_window=1.0)

    def test_spoofed_src_rejected(self):
        ident, verifier, log = self._setup()
        spoofed = Msg(PLUS, Tup("r", "b", 0), "mallory", "b", 0, 1.0)
        entry = log.append(1.0, SND, snd_entry_content(spoofed),
                           aux={"msg": spoofed})
        batch = build_batch(log, ident, "b", [(spoofed, entry)])
        with pytest.raises(AuthenticationError):
            verify_batch(batch, verifier, ident.keypair.public_only(),
                         2.0, 10.0)

    def test_omitted_entry_rejected(self):
        ident, verifier, log = self._setup()
        queued = self._queue(log, ident, with_gap=True)
        batch = build_batch(log, ident, "b", queued)
        batch.gaps = []  # hide the interleaved entry
        with pytest.raises(AuthenticationError):
            verify_batch(batch, verifier, ident.keypair.public_only(),
                         2.0, 10.0)
