"""Framing layer: round-trips under arbitrary fragmentation, and damage
tolerance — a truncated, oversized, or garbage-wrapped frame never
corrupts a later well-formed one."""

import pickle
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import Tup
from repro.service.framing import (
    FrameDecoder, FramingError, HEADER_BYTES, MAGIC, encode_frame,
)


def raw_frame(payload, length=None):
    """Hand-build a frame around *payload* bytes (bypassing pickle)."""
    if length is None:
        length = len(payload)
    prefix = struct.pack(">4sI", MAGIC, length)
    return prefix + struct.pack(
        ">II", zlib.crc32(prefix), zlib.crc32(payload)
    ) + payload


def decode_all(data, chunks=None, **kwargs):
    """Feed *data* to a fresh decoder, optionally split at *chunks*."""
    dec = FrameDecoder(**kwargs)
    out = []
    if chunks is None:
        out.extend(dec.feed(data))
    else:
        prev = 0
        for cut in list(chunks) + [len(data)]:
            out.extend(dec.feed(data[prev:cut]))
            prev = cut
    return dec, out


PAYLOADS = st.recursive(
    st.one_of(
        st.none(), st.booleans(), st.integers(), st.text(max_size=20),
        st.binary(max_size=40),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestRoundTrip:
    def test_single_frame(self):
        dec, out = decode_all(encode_frame({"type": "hello", "n": 3}))
        assert out == [{"type": "hello", "n": 3}]
        assert dec.frames_decoded == 1
        assert dec.garbage_bytes == 0

    def test_wire_value_objects_cross_natively(self):
        tup = Tup("lookupResult", "n1", 42, "n2", 7)
        _dec, out = decode_all(encode_frame({"tup": tup}))
        assert out[0]["tup"] == tup

    def test_byte_at_a_time(self):
        msgs = [{"i": i, "pad": "x" * i} for i in range(5)]
        data = b"".join(encode_frame(m) for m in msgs)
        dec, out = decode_all(data, chunks=range(1, len(data)))
        assert out == msgs
        assert dec.pending_bytes() == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(PAYLOADS, min_size=1, max_size=4), st.data())
    def test_arbitrary_splits(self, msgs, data):
        stream = b"".join(encode_frame(m) for m in msgs)
        cuts = data.draw(
            st.lists(st.integers(0, len(stream)), max_size=8).map(sorted)
        )
        dec, out = decode_all(stream, chunks=cuts)
        assert out == msgs
        assert dec.frames_decoded == len(msgs)
        assert dec.garbage_bytes == 0
        assert dec.corrupt_frames == 0


class TestDamage:
    def test_truncated_frame_waits_without_emitting(self):
        data = encode_frame({"k": "v" * 100})
        dec, out = decode_all(data[:-10])
        assert out == []
        assert dec.pending_bytes() == len(data) - 10
        # The rest arriving later completes it.
        assert dec.feed(data[-10:]) == [{"k": "v" * 100}]

    def test_truncated_frame_then_eof_is_clean(self):
        # A connection dying mid-frame leaves buffered bytes and no
        # phantom frame — the owner just drops the decoder.
        dec, out = decode_all(encode_frame([1, 2, 3])[:7])
        assert out == []
        assert dec.frames_decoded == 0

    def test_leading_garbage_is_skipped(self):
        frame = encode_frame("payload")
        dec, out = decode_all(b"\x00\x01NOISE" + frame)
        assert out == ["payload"]
        assert dec.garbage_bytes == 7

    def test_mid_stream_garbage_between_frames(self):
        a, b = encode_frame("a"), encode_frame("b")
        dec, out = decode_all(a + b"garbage bytes!" + b)
        assert out == ["a", "b"]
        assert dec.garbage_bytes == 14

    def test_garbage_containing_magic_prefix(self):
        frame = encode_frame("ok")
        # Garbage that ends with a partial magic marker must not eat the
        # real frame that follows.
        dec, out = decode_all(b"xx" + MAGIC[:2] + b"yy" + frame)
        assert out == ["ok"]

    def test_corrupt_payload_crc_resyncs_to_next_frame(self):
        bad = bytearray(encode_frame({"seq": 1}))
        bad[HEADER_BYTES + 2] ^= 0xFF
        good = encode_frame({"seq": 2})
        dec, out = decode_all(bytes(bad) + good)
        assert out == [{"seq": 2}]
        assert dec.corrupt_frames == 1

    def test_corrupt_length_field_cannot_swallow_next_frame(self):
        # Flip the top byte of the length field (claiming ~16 MB): the
        # header CRC catches it immediately — the decoder neither waits
        # for nor skips the bytes the lying length claims, so the next
        # frame is recovered.
        frame = bytearray(encode_frame("x"))
        frame[4] ^= 0x01
        good = encode_frame("recovered")
        dec, out = decode_all(bytes(frame) + good)
        assert "recovered" in out
        assert dec.corrupt_frames >= 1

    def test_oversized_length_is_rejected_without_buffering(self):
        huge = raw_frame(b"", length=1 << 30)
        good = encode_frame("after")
        dec, out = decode_all(huge + good, max_frame_bytes=1024)
        assert out == ["after"]
        assert dec.oversized_frames == 1
        assert dec.pending_bytes() < 2048

    def test_oversized_encode_raises(self):
        with pytest.raises(FramingError):
            encode_frame(b"x" * 100, max_frame_bytes=10)

    def test_valid_crc_bad_pickle_consumes_frame(self):
        dec, out = decode_all(
            raw_frame(b"not a pickle at all") + encode_frame("next"))
        assert out == ["next"]
        assert dec.corrupt_frames == 1

    def test_unpickler_rejects_modules_outside_allow_list(self):
        # A frame naming an arbitrary importable (the classic pickle
        # gadget) is dropped as corrupt, and the stream continues.
        evil = pickle.dumps(zlib.crc32)  # by-reference: names module zlib
        dec, out = decode_all(raw_frame(evil) + encode_frame("survives"))
        assert out == ["survives"]
        assert dec.corrupt_frames == 1

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200), st.lists(PAYLOADS, max_size=3))
    def test_garbage_prefix_never_corrupts_following_frames(
            self, garbage, msgs):
        stream = garbage + b"".join(encode_frame(m) for m in msgs)
        _dec, out = decode_all(stream)
        assert out == msgs
