"""The benchmark regression gate's engine rules.

The gate's promise (benchmarks/check_regression.py docstring) is that
only machine-portable metrics are compared: deterministic counters and
within-run ratios, never raw wall-clock seconds. These tests pin the
engine extractor and hard checks to that promise — join-candidate
counters gate at every size, guard-schedule counts gate the planner,
plan build/analyze seconds are recorded but never become metrics, and
an indexed engine that enumerates more candidates than the naive scan
fails outright. The differential gates work the same way: every row
must carry the three-way equivalence verdict and delta counters, the
differential arm must not out-emit the naive reference, and the
1-event refresh must stay far under a from-scratch re-derivation.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py")
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _payload():
    return {
        "benchmark": "engine",
        "results": [
            {
                "workload": "chord", "size": 8,
                "naive_seconds": 0.2, "indexed_seconds": 0.05,
                "speedup": 4.0,
                "indexed_join_candidates": 100,
                "naive_join_candidates": 400,
                "engines_agree": True,
                "delta_tuples_in": 80, "delta_tuples_out": 300,
                "retractions_applied": 12, "support_rederivations": 3,
                "naive_delta_tuples_out": 300,
            },
            {
                "workload": "bgp", "size": 10,
                "naive_seconds": 0.01, "indexed_seconds": 0.005,
                "speedup": 2.0,
                "indexed_join_candidates": 50,
                "naive_join_candidates": 60,
                "engines_agree": True,
                "delta_tuples_in": 40, "delta_tuples_out": 90,
                "retractions_applied": 5, "support_rederivations": 1,
                "naive_delta_tuples_out": 90,
            },
        ],
        "plans": [
            {"program": "chord", "rules": 17,
             "build_seconds": 0.001, "analyze_seconds": 0.002,
             "guard_pre": 4, "guard_mid": 5, "guard_late": 16},
        ],
        "refresh": {
            "workload": "chord", "size": 8,
            "incremental_delta_tuples_out": 11,
            "full_rederive_delta_tuples_out": 987,
            "ratio": 0.0111,
        },
    }


class TestEngineMetrics:
    def test_join_candidates_gate_at_every_size(self):
        metrics = check_regression.engine_metrics(_payload())
        assert metrics["chord@8.indexed_join_candidates"] == (
            100, check_regression.LOWER_IS_BETTER)
        # Below the wall-clock floor the speedup is skipped, but the
        # deterministic counter still gates.
        assert "bgp@10.speedup" not in metrics
        assert metrics["bgp@10.indexed_join_candidates"] == (
            50, check_regression.LOWER_IS_BETTER)

    def test_guard_schedule_counts_gate(self):
        metrics = check_regression.engine_metrics(_payload())
        assert metrics["plans.chord.guard_early"] == (
            9, check_regression.HIGHER_IS_BETTER)
        assert metrics["plans.chord.guard_late"] == (
            16, check_regression.LOWER_IS_BETTER)

    def test_wall_clock_never_becomes_a_metric(self):
        for key in check_regression.engine_metrics(_payload()):
            assert "seconds" not in key
            assert "build" not in key and "analyze" not in key

    def test_delta_counters_gate_at_every_size(self):
        metrics = check_regression.engine_metrics(_payload())
        assert metrics["chord@8.delta_tuples_out"] == (
            300, check_regression.LOWER_IS_BETTER)
        assert metrics["bgp@10.support_rederivations"] == (
            1, check_regression.LOWER_IS_BETTER)

    def test_refresh_ratio_is_a_metric(self):
        metrics = check_regression.engine_metrics(_payload())
        assert metrics["refresh.ratio"] == (
            0.0111, check_regression.LOWER_IS_BETTER)
        assert metrics["refresh.incremental_delta_tuples_out"] == (
            11, check_regression.LOWER_IS_BETTER)


class TestEngineHardChecks:
    def test_clean_payload_passes(self):
        assert check_regression.engine_hard_checks(_payload()) == []

    def test_indexed_above_naive_fails(self):
        payload = _payload()
        payload["results"][0]["indexed_join_candidates"] = 401
        failures = check_regression.engine_hard_checks(payload)
        assert any("chord@8" in f and "401" in f for f in failures)

    def test_missing_counters_fail(self):
        payload = _payload()
        del payload["results"][1]["indexed_join_candidates"]
        failures = check_regression.engine_hard_checks(payload)
        assert any("bgp@10" in f and "counters" in f for f in failures)

    def test_missing_plans_section_fails(self):
        payload = _payload()
        payload["plans"] = []
        failures = check_regression.engine_hard_checks(payload)
        assert any("plans" in f for f in failures)

    def test_missing_equivalence_verdict_fails(self):
        payload = _payload()
        del payload["results"][0]["engines_agree"]
        failures = check_regression.engine_hard_checks(payload)
        assert any("chord@8" in f and "equivalence" in f
                   for f in failures)

    def test_differential_out_emitting_naive_fails(self):
        payload = _payload()
        payload["results"][1]["delta_tuples_out"] = 91
        failures = check_regression.engine_hard_checks(payload)
        assert any("bgp@10" in f and "91" in f and "redundant" in f
                   for f in failures)

    def test_missing_delta_counters_fail(self):
        payload = _payload()
        del payload["results"][0]["naive_delta_tuples_out"]
        failures = check_regression.engine_hard_checks(payload)
        assert any("chord@8" in f and "delta counters" in f
                   for f in failures)

    def test_missing_refresh_section_fails(self):
        payload = _payload()
        del payload["refresh"]
        failures = check_regression.engine_hard_checks(payload)
        assert any("refresh" in f for f in failures)

    def test_refresh_above_ceiling_fails(self):
        payload = _payload()
        payload["refresh"]["incremental_delta_tuples_out"] = 500
        failures = check_regression.engine_hard_checks(payload)
        assert any("refresh" in f and "500" in f for f in failures)

    def test_committed_outputs_satisfy_hard_checks(self):
        import json
        for path in (REPO_ROOT / "benchmarks" / "BENCH_engine.json",
                     REPO_ROOT / "benchmarks" / "baselines"
                     / "BENCH_engine.json"):
            payload = json.loads(path.read_text())
            assert check_regression.engine_hard_checks(payload) == []
