"""The incremental audit pipeline: delta retrieval, extendable views,
refresh semantics, and the evidence-boundary bugfix.

The invariant under test: after ``refresh()``, a querier's views answer
exactly like a cold querier's would (same tuples, same verdicts), while
having fetched, verified and replayed only the log suffix past each
view's previously verified head — and a node that forks its log after a
cached head is *proven* faulty by the refresh, not silently re-verified.
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.metrics import QueryStats
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import ForkingNode, SilentNode, TamperingNode
from repro.snp.snoopy import suffix_of_response
from repro.snp.replay import check_against_authenticator
from repro.util.errors import LogVerificationError


def _grown_net(seed=21, node_overrides=None):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides=node_overrides)
    dep.run()
    return dep, nodes


# ------------------------------------------------------------ delta retrieve


class TestDeltaRetrieve:
    def test_suffix_anchors_at_previous_head(self):
        dep, nodes = _grown_net()
        node = nodes["b"]
        head = len(node.log)
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        response = node.retrieve(since_index=head)
        assert response.start_index == head + 1
        assert response.start_hash == node.log.hash_before(head + 1)
        assert [e.index for e in response.entries] == \
            list(range(head + 1, len(node.log) + 1))

    def test_empty_suffix_still_carries_fresh_head_auth(self):
        dep, nodes = _grown_net()
        node = nodes["c"]
        head = len(node.log)
        response = node.retrieve(since_index=head)
        assert response.entries == []
        assert response.start_index == head + 1
        assert response.start_hash == node.log.head_hash()
        assert response.head_auth.index == head

    def test_since_beyond_head_falls_back_to_full_log(self):
        dep, nodes = _grown_net()
        node = nodes["c"]
        response = node.retrieve(since_index=len(node.log) + 10)
        assert response.start_index == 1
        assert len(response.entries) == len(node.log)

    def test_mirror_served_suffix(self):
        dep, nodes = _grown_net()
        head = 3
        dep.replicate_logs()
        full = dep.find_mirror("b")
        sliced = dep.find_mirror("b", since_index=head)
        assert sliced.start_index == head + 1
        assert sliced.start_hash == full.entries[head - 1].entry_hash
        assert len(sliced.entries) == len(full.entries) - head
        # A replica no longer than the verified head has nothing to serve.
        assert dep.find_mirror(
            "b", since_index=full.head_auth.index
        ) is None

    def test_suffix_of_response_unanchorable_returns_original(self):
        dep, nodes = _grown_net()
        node = nodes["b"]
        partial = node.retrieve(since_index=5)
        # The stored copy starts at entry 6; it cannot anchor a
        # continuation at entry 3, so the full copy is returned for the
        # querier to verify from scratch.
        assert suffix_of_response(partial, 3) is partial


# ---------------------------------------------------------- refresh: views


class TestRefreshStaleness:
    def test_new_tuples_visible_after_refresh(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        qp.mq.view_of("a")  # cache a's view before the system runs on
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        # Without refresh the view is stale: the new route is missing.
        with pytest.raises(Exception):
            qp.why(best_cost("a", "z", 2))
        epoch = qp.refresh()
        assert epoch == 1
        result = qp.why(best_cost("a", "z", 2))
        assert result.is_clean()

    def test_requery_fetches_only_the_suffix(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        cold = qp.why(best_cost("c", "d", 5)).stats
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        before = qp.mq.stats.copy()
        qp.refresh()
        qp.why(best_cost("c", "d", 5))
        requery = qp.mq.stats.delta_since(before)
        # A fresh querier pays the full (now longer) logs.
        cold_after = QueryProcessor(dep).why(best_cost("c", "d", 5)).stats
        assert requery.delta_fetches > 0
        assert 0 < requery.log_bytes < cold.log_bytes
        assert requery.log_bytes < cold_after.log_bytes
        assert 0 < requery.events_replayed < cold_after.events_replayed

    def test_refreshed_views_match_cold_views(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        # Deleting c's direct link reroutes the provenance through b
        # (bestCost stays 5: c→b is 2, b→d is 3).
        nodes["c"].delete(link("c", "d", 5))
        dep.run()
        qp.refresh()
        warm = qp.why(best_cost("c", "d", 5))
        cold = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert {v.key() for v in warm.vertices()} == \
            {v.key() for v in cold.vertices()}
        assert warm.is_clean() and cold.is_clean()

    def test_noop_refresh_fetches_no_bytes_and_keeps_views(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        view = qp.mq.view_of("c")
        before = qp.mq.stats.copy()
        qp.refresh()
        delta = qp.mq.stats.delta_since(before)
        assert delta.log_bytes == 0
        assert delta.events_replayed == 0
        assert delta.refreshes > 0
        assert qp.mq.view_of("c") is view

    def test_refresh_recovers_previously_silent_node(self):
        dep, nodes = _grown_net(node_overrides={"b": SilentNode})
        qp = QueryProcessor(dep)
        assert qp.why(best_cost("c", "d", 5)).yellow_vertices()
        nodes["b"].refuse_retrieve = False
        qp.refresh()
        assert qp.why(best_cost("c", "d", 5)).is_clean()

    def test_refresh_keeps_stale_view_when_node_goes_silent(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        view = qp.mq.view_of("b")
        nodes["b"].retrieve = lambda *a, **k: None  # node stops answering
        refreshed = qp.mq.refresh("b")
        assert refreshed is view
        assert refreshed.status == "ok"

    def test_stale_view_miss_is_yellow_not_red(self):
        # Red means *proof*: a correct node whose cached view simply does
        # not extend to newer activity (here: kept stale through a refresh
        # while unreachable) must not be flagged for vertices that
        # postdate its verified head.
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        nodes["a"].insert(link("a", "b", 1))  # new traffic toward b
        dep.run()
        nodes["b"].retrieve = lambda *a, **k: None
        qp.refresh()
        result = qp.effects(link("a", "b", 1), node="a", scope=4)
        assert not [v for v in result.red_vertices() if v.node == "b"]
        assert [v for v in result.yellow_vertices() if v.node == "b"]

    def test_refresh_does_not_recount_verified_evidence_as_skipped(self):
        dep, nodes = _grown_net()
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        qp.refresh()  # evidence from the build is memoized, not re-skipped
        before = qp.mq.stats.copy()
        qp.refresh()
        delta = qp.mq.stats.delta_since(before)
        assert delta.auth_checks_skipped == 0
        # ... and already-verified consistency evidence is not re-signed:
        # only the fresh per-node head authenticators need verification.
        assert delta.signatures_verified == len(qp.mq._views)


# ------------------------------------------------------------ refresh: forks


class TestRefreshForkDetection:
    def test_fork_after_cached_head_is_proven_faulty(self):
        dep, nodes = _grown_net(node_overrides={"b": ForkingNode})
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        head = qp.mq.view_of("b").head_index
        # b rewrites history below the verified head and keeps operating,
        # so its replacement log grows past the old head on a new chain.
        nodes["b"].fork_log(keep_upto=head - 4)
        nodes["b"].insert(link("b", "q", 4))
        dep.run()
        view = qp.mq.refresh("b")
        assert view.status == "proven-faulty"
        assert "fork" in view.verdict_reason

    def test_fork_to_shorter_log_is_proven_faulty(self):
        dep, nodes = _grown_net(node_overrides={"b": ForkingNode})
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        nodes["b"].fork_log(keep_upto=3)
        view = qp.mq.refresh("b")
        assert view.status == "proven-faulty"

    def test_proven_faulty_verdict_survives_refresh(self):
        dep, nodes = _grown_net(node_overrides={"b": TamperingNode})
        nodes["b"].tamper_entry(2, ("tampered",))
        qp = QueryProcessor(dep)
        view = qp.mq.view_of("b")
        assert view.status == "proven-faulty"
        assert qp.mq.refresh("b") is view

    def test_macroquery_after_fork_refresh_flags_node(self):
        dep, nodes = _grown_net(node_overrides={"b": ForkingNode})
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        head = qp.mq.view_of("b").head_index
        nodes["b"].fork_log(keep_upto=head - 4)
        nodes["b"].insert(link("b", "q", 4))
        dep.run()
        qp.refresh()
        result = qp.why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()


# ----------------------------------------------- evidence boundary (bugfix)


class TestEvidenceBoundary:
    def _segment(self, node, since):
        response = node.retrieve(since_index=since)
        from repro.snp.replay import verify_segment_hashes
        return response, verify_segment_hashes(response)

    def test_anchor_authenticator_is_checked_not_skipped(self):
        dep, nodes = _grown_net()
        node = nodes["b"]
        response, hashes = self._segment(node, since=5)
        entry = node.log.entry(5)
        from repro.snp.evidence import sign_authenticator
        good = sign_authenticator(node.identity, 5, entry.timestamp,
                                  entry.entry_hash)
        stats = QueryStats()
        check_against_authenticator(response, hashes, good, stats)
        assert stats.auth_checks_skipped == 0
        bad = sign_authenticator(node.identity, 5, entry.timestamp,
                                 b"\x00" * 32)
        with pytest.raises(LogVerificationError):
            check_against_authenticator(response, hashes, bad, stats)

    def test_pre_anchor_evidence_counted_as_skipped(self):
        dep, nodes = _grown_net()
        node = nodes["b"]
        response, hashes = self._segment(node, since=5)
        entry = node.log.entry(2)
        from repro.snp.evidence import sign_authenticator
        old = sign_authenticator(node.identity, 2, entry.timestamp,
                                 entry.entry_hash)
        stats = QueryStats()
        check_against_authenticator(response, hashes, old, stats)
        assert stats.auth_checks_skipped == 1

    def test_checkpoint_query_reports_skipped_evidence(self):
        dep, nodes = _grown_net()
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp = QueryProcessor(dep, use_checkpoints=True)
        result = qp.why(best_cost("c", "d", 5))
        # Evidence below the checkpoint anchors cannot be compared against
        # the partial segments; the loss must be visible, not silent.
        assert result.stats.auth_checks_skipped > 0
