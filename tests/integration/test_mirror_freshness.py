"""Mirror freshness: delta replication keeps replica sets current.

``Deployment.replicate_deltas`` re-pushes each log's *suffix* to the
replica set (spliced by ``accept_mirror``); ``enable_replication``
installs a standing cadence so a running deployment keeps its replicas
fresh without anyone calling replicate by hand — which is what lets
``find_mirror(since_index=)`` serve view *refreshes* for origins that
have since crashed.
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.snoopy import merge_mirror_responses
from repro.util.errors import ConfigurationError


def _net(seed=55):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep)
    dep.run()
    return dep, nodes


def _mirror_holders(dep, origin):
    return [n for n in dep.nodes.values()
            if n.node_id != origin and n.mirror_of(origin) is not None]


class TestReplicateDeltas:
    def test_first_pass_pushes_full_copies(self):
        dep, _nodes = _net()
        pushes = dep.replicate_deltas(replication_factor=2)
        assert pushes > 0
        holders = _mirror_holders(dep, "a")
        assert len(holders) == 2
        origin_log = dep.node("a").log
        for holder in holders:
            mirror = holder.mirror_of("a")
            assert mirror.start_index == 1
            assert len(mirror.entries) == len(origin_log)
            assert mirror.head_auth.index == len(origin_log)

    def test_second_pass_splices_only_the_suffix(self):
        dep, nodes = _net()
        dep.replicate_deltas()
        holder = _mirror_holders(dep, "a")[0]
        first_entry = holder.mirror_of("a").entries[0]
        old_head = holder.mirror_of("a").head_auth.index

        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.replicate_deltas()

        mirror = holder.mirror_of("a")
        origin_log = dep.node("a").log
        assert mirror.head_auth.index == len(origin_log) > old_head
        assert len(mirror.entries) == len(origin_log)
        # The stored prefix was kept, not re-shipped: same entry objects.
        assert mirror.entries[0] is first_entry

    def test_quiescent_pass_pushes_nothing(self):
        dep, _nodes = _net()
        dep.replicate_deltas()
        assert dep.replicate_deltas() == 0


class TestMergeMirrorResponses:
    def test_bare_suffix_without_base_is_rejected(self):
        dep, _nodes = _net()
        suffix = dep.node("a").retrieve(since_index=2)
        assert suffix.start_index == 3
        assert merge_mirror_responses(None, suffix) is None
        node_b = dep.node("b")
        node_b.accept_mirror(suffix)
        assert node_b.mirror_of("a") is None

    def test_non_contiguous_suffix_is_rejected(self):
        dep, _nodes = _net()
        full = dep.node("a").retrieve()
        # A stored copy holding only entries 1..2 cannot splice a suffix
        # that starts at entry 4 — the gap would be unverifiable.
        short = full.__class__(
            node=full.node, entries=full.entries[:2], start_index=1,
            start_hash=full.start_hash, head_auth=full.head_auth,
        )
        gapped = dep.node("a").retrieve(since_index=3)
        assert gapped.start_index == 4
        assert merge_mirror_responses(short, gapped) is None

    def test_longer_full_copy_replaces_shorter(self):
        dep, nodes = _net()
        old_full = dep.node("a").retrieve()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        new_full = dep.node("a").retrieve()
        merged = merge_mirror_responses(old_full, new_full)
        assert merged is new_full
        assert merge_mirror_responses(new_full, old_full) is None


class TestReplicationCadence:
    def test_enable_replication_validates_interval(self):
        dep, _nodes = _net()
        with pytest.raises(ConfigurationError):
            dep.enable_replication(0)

    def test_run_until_ticks_the_cadence(self):
        dep, nodes = _net()
        dep.enable_replication(1.0, replication_factor=2)
        nodes["a"].insert(link("a", "z", 2))
        dep.run_until(dep.sim.now + 5.0)
        holders = _mirror_holders(dep, "a")
        assert holders
        assert holders[0].mirror_of("a").head_auth.index \
            == len(dep.node("a").log)

    def test_run_performs_a_quiescence_pass(self):
        dep, nodes = _net()
        dep.enable_replication(10.0)
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        holders = _mirror_holders(dep, "a")
        assert holders
        assert holders[0].mirror_of("a").head_auth.index \
            == len(dep.node("a").log)


class TestCrashThenRefresh:
    def test_refresh_of_crashed_origin_served_from_fresh_mirror(self):
        dep, nodes = _net(seed=61)
        dep.enable_replication(5.0)
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        view = qp.mq.view_of("a")
        old_head = view.head_index

        # The origin runs further; the cadence keeps its replicas fresh.
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        new_head = len(dep.node("a").log)
        assert new_head > old_head

        # Crash the origin *after* replication: retrieve goes dark.
        dep.nodes["a"].retrieve = lambda **kwargs: None
        before = qp.mq.stats.copy()
        qp.refresh()
        delta = qp.mq.stats.delta_since(before)

        refreshed = qp.mq.view_of("a")
        assert refreshed.status == "ok"
        assert refreshed.head_index == new_head
        assert delta.delta_fetches >= 1  # the mirror served a suffix
        del dep.nodes["a"].retrieve

    def test_without_replication_the_crashed_origin_stays_stale(self):
        dep, nodes = _net(seed=62)
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        old_head = qp.mq.view_of("a").head_index
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.nodes["a"].retrieve = lambda **kwargs: None
        qp.refresh()
        view = qp.mq.view_of("a")
        assert view.status == "ok"
        assert view.head_index == old_head  # stale but verified
        del dep.nodes["a"].retrieve
