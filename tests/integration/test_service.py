"""The service plane end-to-end, over real loopback sockets.

The acceptance bar for PR 8's tentpole: a daemon fed by *pushed* deltas
must reach verdicts bit-identical to a direct in-process audit of the
same deployment (clean runs compare whole summaries; adversarial runs
compare convictions), standing subscriptions must alert on the first
push that carries a downgrade, and the degradation ladder — shedding to
poll fallback, retry-with-backoff — must keep both sides consistent.

Everything here runs the real stack: asyncio servers on ``127.0.0.1``
port 0, framed pickles on the push socket, HTTP/NDJSON on the REST side.
"""

import threading

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.service import (
    MonitorClient, ServicePusher, start_monitor_thread, tup_spec,
)
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import ForkingNode, TamperingNode


def paper_deployment(adversary_cls=None, victim="b", seed=77):
    dep = Deployment(seed=seed, key_bits=256)
    overrides = {victim: adversary_cls} if adversary_cls else {}
    nodes = build_paper_network(dep, node_overrides=overrides)
    dep.run()
    return dep, nodes


def direct_summary(dep, tup, **kwargs):
    with QueryProcessor(dep) as qp:
        qp.refresh()
        return qp.why(tup, **kwargs).summary()


@pytest.fixture
def monitor():
    handle = start_monitor_thread(
        host="127.0.0.1", push_port=0, http_port=0)
    try:
        yield handle
    finally:
        handle.stop()


def make_pusher(dep, handle, **kwargs):
    return ServicePusher(
        dep, "127.0.0.1", handle.daemon.push_port, **kwargs)


class TestServiceAudit:
    def test_pushed_audit_matches_direct(self, monitor):
        """The acceptance gate: the daemon's verdict over pushed data is
        bit-identical to a direct in-process audit."""
        dep, _nodes = paper_deployment()
        expected = direct_summary(dep, best_cost("c", "d", 5))
        assert expected["verdict"] == "green"

        pusher = make_pusher(dep, monitor)
        ack = pusher.push_once()
        assert ack is not None and not ack.get("shed")

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        out = client.query(tup_spec(best_cost("c", "d", 5), fresh=True))
        assert out["ok"]
        assert out["result"] == expected
        pusher.close()

    def test_status_reports_pushed_heads(self, monitor):
        dep, _nodes = paper_deployment()
        pusher = make_pusher(dep, monitor)
        pusher.push_once()
        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        status = client.status()
        assert status["ok"] and status["hello"]
        for name, node in dep.nodes.items():
            assert status["nodes"][str(name)] == len(node.log.entries)
        assert status["meter"]["pushes_accepted"] == 1
        pusher.close()

    def test_incremental_push_ships_only_the_delta(self, monitor):
        dep, nodes = paper_deployment()
        pusher = make_pusher(dep, monitor)
        first = pusher.push_once()
        heads = dict(first["heads"])
        nodes["a"].insert(link("a", "e", 9))
        dep.run()
        msg, _cursors = pusher.build_push()
        part = msg["nodes"]["a"]["response"]
        assert part.start_index == heads["a"] + 1
        second = pusher.push_once()
        assert second["heads"]["a"] == len(nodes["a"].log.entries)
        assert second["heads"]["a"] > heads["a"]
        pusher.close()

    def test_sixteen_concurrent_clients_agree(self, monitor):
        """≥16 REST clients sharing one daemon all see the same audit."""
        dep, _nodes = paper_deployment()
        expected = direct_summary(dep, best_cost("c", "d", 5))
        pusher = make_pusher(dep, monitor)
        pusher.push_once()
        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        client.refresh()

        spec = tup_spec(best_cost("c", "d", 5))
        results = [None] * 16
        errors = []

        def worker(slot):
            try:
                own = MonitorClient(
                    "127.0.0.1", monitor.daemon.http_port, timeout=60)
                results[slot] = own.query(spec)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors
        for out in results:
            assert out is not None and out["ok"]
            assert out["result"] == expected
        assert monitor.daemon.meter.queries_served >= 16
        pusher.close()


class TestAdversarial:
    def test_fork_convicted_through_service(self, monitor):
        """A fork after the daemon stored the honest prefix: the next
        delta contradicts the stored chain, and the daemon's audit
        convicts exactly like a direct one."""
        dep, nodes = paper_deployment(ForkingNode)
        pusher = make_pusher(dep, monitor)
        pusher.push_once()

        nodes["b"].fork_log(keep_upto=3)
        nodes["b"].insert(link("b", "e", 9))
        dep.run()
        pusher.push_once()

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        out = client.query(tup_spec(best_cost("c", "d", 5), fresh=True))
        assert out["ok"]
        assert out["result"]["verdict"] == "red"
        assert "b" in out["result"]["faulty_nodes"]

        direct = direct_summary(dep, best_cost("c", "d", 5))
        assert direct["verdict"] == "red"
        assert "b" in direct["faulty_nodes"]
        pusher.close()

    def test_tampered_history_convicted_through_service(self, monitor):
        dep, nodes = paper_deployment(TamperingNode)
        pusher = make_pusher(dep, monitor)
        pusher.push_once()

        nodes["b"].tamper_entry(2, ("rewritten-history",),
                                recompute_chain=True)
        # History alone can't reach the daemon — it already holds the
        # honest prefix. The node's next (non-empty) push carries hashes
        # from the rewritten chain, and that contradiction convicts.
        nodes["b"].insert(link("b", "e", 9))
        dep.run()
        pusher.push_once()

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        out = client.query(tup_spec(best_cost("c", "d", 5), fresh=True))
        assert out["ok"]
        assert out["result"]["verdict"] == "red"
        assert "b" in out["result"]["faulty_nodes"]
        pusher.close()


class TestSubscriptions:
    def test_alert_on_green_to_red_within_one_push(self, monitor):
        dep, nodes = paper_deployment(ForkingNode)
        pusher = make_pusher(dep, monitor)
        pusher.push_once()

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        watch = tup_spec(best_cost("c", "d", 5))
        with client.subscribe([watch]) as stream:
            banner = stream.next_event(timeout=20)
            assert banner["type"] == "subscribed"
            seen = stream.events_until(
                lambda e: e.get("type") == "state", timeout=20)
            assert seen[-1]["verdict"] == "green"

            nodes["b"].fork_log(keep_upto=3)
            nodes["b"].insert(link("b", "e", 9))
            dep.run()
            pusher.push_once()

            seen = stream.events_until(
                lambda e: e.get("type") == "alert", timeout=20)
            alert = seen[-1]
            assert alert["from"] == "green" and alert["to"] == "red"
            assert "b" in alert["faulty_nodes"]
        assert monitor.daemon.meter.alerts_emitted >= 1
        pusher.close()

    def test_fanout_same_downgrade_reaches_every_subscriber(self, monitor):
        dep, nodes = paper_deployment(ForkingNode)
        pusher = make_pusher(dep, monitor)
        pusher.push_once()

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        watch = tup_spec(best_cost("c", "d", 5))
        streams = [client.subscribe([watch]) for _ in range(4)]
        try:
            for stream in streams:
                assert stream.next_event(timeout=20)["type"] == "subscribed"
                stream.events_until(
                    lambda e: e.get("type") == "state", timeout=20)

            nodes["b"].fork_log(keep_upto=3)
            nodes["b"].insert(link("b", "e", 9))
            dep.run()
            pusher.push_once()

            for stream in streams:
                seen = stream.events_until(
                    lambda e: e.get("type") == "alert", timeout=20)
                assert seen[-1]["to"] == "red"
            # One unique watch → one evaluation per epoch, not four.
            assert (monitor.daemon.meter.watch_evaluations
                    < 4 * monitor.daemon.meter.refresh_batches)
        finally:
            for stream in streams:
                stream.close()
        pusher.close()


    def test_quiet_refresh_skips_watch_evaluation(self, monitor):
        """A refresh that changes no node's view (no new pushes, every
        delta fetch empty) reuses each watch's stored outcome instead of
        re-running the query — and a refresh that *does* carry a
        downgrade still alerts, so the skip never masks a change."""
        dep, nodes = paper_deployment(ForkingNode)
        pusher = make_pusher(dep, monitor)
        pusher.push_once()

        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        watch = tup_spec(best_cost("c", "d", 5))
        with client.subscribe([watch]) as stream:
            assert stream.next_event(timeout=20)["type"] == "subscribed"
            stream.events_until(
                lambda e: e.get("type") == "state", timeout=20)

            skipped_before = monitor.daemon.meter.watch_evaluations_skipped
            evaluated_before = monitor.daemon.meter.watch_evaluations
            for _ in range(3):   # nothing pushed: views cannot change
                assert client.refresh()["ok"]
            assert (monitor.daemon.meter.watch_evaluations_skipped
                    - skipped_before == 3)
            assert (monitor.daemon.meter.watch_evaluations
                    == evaluated_before)

            nodes["b"].fork_log(keep_upto=3)
            nodes["b"].insert(link("b", "e", 9))
            dep.run()
            pusher.push_once()
            seen = stream.events_until(
                lambda e: e.get("type") == "alert", timeout=20)
            assert seen[-1]["to"] == "red"
            assert (monitor.daemon.meter.watch_evaluations
                    > evaluated_before)
        pusher.close()


class TestDegradation:
    def test_shed_keeps_delta_and_next_tick_polls(self, monitor):
        dep, _nodes = paper_deployment()
        pusher = make_pusher(dep, monitor)
        pusher.connect()

        monitor.daemon.ingest_limit = 0
        ack = pusher.push_once()
        assert ack is not None and ack["shed"]
        # Nothing advanced past the hello baseline of zero.
        assert set(pusher.acked_heads.values()) == {0}
        assert pusher.meter.poll_fallbacks == 1
        assert monitor.daemon.meter.pushes_shed == 1

        monitor.daemon.ingest_limit = 64
        ack = pusher.push_once()
        assert not ack["shed"]
        for name, node in dep.nodes.items():
            assert ack["heads"][name] == len(node.log.entries)
        pusher.close()

    def test_retry_with_backoff_then_give_up(self):
        dep, _nodes = paper_deployment()
        sleeps = []
        pusher = ServicePusher(
            dep, "127.0.0.1", 1,  # reserved port: connection refused
            retries=3, backoff=0.01, backoff_factor=2.0,
            sleep=sleeps.append, timeout=0.2)
        ack = pusher.push_once()
        assert ack is None
        assert pusher.meter.push_failures == 1
        assert pusher.meter.push_retries == 3
        assert sleeps == [0.01, 0.02, 0.04]
        assert pusher.acked_heads == {}

    def test_push_recovers_after_daemon_restart(self):
        dep, _nodes = paper_deployment()
        first = start_monitor_thread(
            host="127.0.0.1", push_port=0, http_port=0)
        try:
            pusher = make_pusher(dep, first)
            assert not pusher.push_once()["shed"]
        finally:
            first.stop()
        pusher.close()

        second = start_monitor_thread(
            host="127.0.0.1", push_port=0, http_port=0)
        try:
            pusher.port = second.daemon.push_port
            ack = pusher.push_once()
            assert ack is not None and not ack["shed"]
            # The fresh daemon acked from zero: the pusher adopted its
            # heads, so the full log was re-shipped and audits work.
            client = MonitorClient("127.0.0.1", second.daemon.http_port)
            out = client.query(tup_spec(best_cost("c", "d", 5), fresh=True))
            assert out["ok"] and out["result"]["verdict"] == "green"
        finally:
            second.stop()
        pusher.close()


class TestCadenceComposition:
    def test_service_push_rides_the_shared_scheduler(self, monitor):
        """PR 8's bugfix satellite: replication, GC, and service push all
        hang off one cadence table — no third ad-hoc loop."""
        dep, nodes = paper_deployment()
        dep.enable_replication(interval_seconds=5.0)
        dep.enable_gc(interval_seconds=7.0)

        pusher = make_pusher(dep, monitor)
        querier = pusher.install(interval_seconds=3.0)
        assert dep.cadence("service-push") is not None
        assert dep.cadence("replication") is not None
        assert dep.cadence("gc") is not None

        nodes["a"].insert(link("a", "e", 9))
        dep.run()      # quiescence fires the at-quiescence cadences
        assert pusher.meter.pushes_sent >= 1
        assert monitor.daemon.meter.pushes_accepted >= 1

        # The daemon's marks flow back through the GC handshake seat.
        client = MonitorClient("127.0.0.1", monitor.daemon.http_port)
        client.query(tup_spec(best_cost("c", "d", 5), fresh=True))
        pusher.push_once()
        assert querier.low_water_marks()
        assert querier in dep._queriers

        pusher.uninstall()
        assert dep.cadence("service-push") is None
        assert querier not in dep._queriers
        pusher.close()
