"""Checkpoint GC: the retention handshake keeps logs bounded while the
audit semantics survive truncation.

The invariants under test (ISSUE 5):

* an honest GC'd node stays green — standing auditors keep delta-
  refreshing across the floor, cold builds seed from the anchor
  checkpoint, and nothing turns red;
* a GC'd prefix only ever turns verdicts into honest yellow — a cold
  build below the floor resolves unreachable history as unresolved,
  never as a silent green and never as an unprovable red;
* an over-eager truncator (discards entries it signed a floor for) is
  convicted the moment a full build observes the missing coverage;
* a floor-liar (advertises a floor above a live auditor's verified
  head) is convicted at handshake time from the signed evidence alone;
* pre-GC convictions remain reproducible: signed proof does not expire;
* mirrors participate in the same floors, and a crashed origin's view
  is still served — checkpoint-anchored — from its GC'd mirror;
* serial ≡ wire ≡ process builds stay bit-identical post-GC.
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import (
    FloorLiarNode, ForkingNode, OverTruncatingNode,
)
from repro.snp.microquery import OK, PROVEN_FAULTY
from repro.util.errors import ConfigurationError


def _net(seed, overrides=None):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides=overrides or {})
    dep.run()
    return dep, nodes


def _standing_auditor(dep):
    qp = QueryProcessor(dep)
    dep.register_querier(qp)
    qp.prefetch()
    return qp


def _fingerprint(result):
    return sorted((str(v.key()), v.color) for v in result.graph.vertices())


class TestHandshake:
    def test_low_water_marks_are_min_over_auditors(self):
        dep, _nodes = _net(seed=400)
        qp1 = _standing_auditor(dep)
        qp2 = QueryProcessor(dep)
        dep.register_querier(qp2)
        qp2.mq.view_of("a")
        marks = dep.collect_low_water_marks()
        assert set(qp1.low_water_marks()) == set(dep.nodes)
        assert marks["a"] == min(qp1.low_water_marks()["a"],
                                 qp2.low_water_marks()["a"])
        # qp2 holds no view of b: only qp1 constrains it.
        assert marks["b"] == qp1.low_water_marks()["b"]

    def test_register_querier_requires_low_water_marks(self):
        dep, _nodes = _net(seed=401)
        with pytest.raises(ConfigurationError):
            dep.register_querier(object())

    def test_advertisements_are_signed_and_recorded(self):
        dep, _nodes = _net(seed=402)
        dep.checkpoint_all()
        _standing_auditor(dep)   # marks cover the checkpoints
        dep.run_gc(checkpoint=False)
        from repro.snp.evidence import verify_retention_floor
        for name in dep.nodes:
            advert = dep.retention_floors[name]
            assert verify_retention_floor(dep.public_key_of(name), advert)
            assert advert.floor_index == dep.advertised_floor_of(name)

    def test_floor_never_exceeds_auditor_marks(self):
        dep, nodes = _net(seed=403)
        dep.checkpoint_all()     # eligible anchors, below the marks
        qp = _standing_auditor(dep)
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.checkpoint_all()     # newer anchors, above the stale marks
        # The auditor has NOT refreshed: every floor must stay at or
        # below its (now stale) verified heads.
        marks = qp.low_water_marks()
        dep.run_gc(checkpoint=False)
        for name in dep.nodes:
            assert 0 < dep.advertised_floor_of(name) <= marks[name]
        assert not dep.maintainer.retention_faults


class TestHonestGc:
    def _grown(self, seed=410):
        dep, nodes = _net(seed=seed)
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        return dep, nodes, qp

    def test_gc_reclaims_bytes_and_stays_green(self):
        dep, nodes, qp = self._grown()
        before = {n: node.log.size_bytes() for n, node in dep.nodes.items()}
        reclaimed = dep.run_gc(checkpoint=False)
        assert reclaimed > 0
        assert dep.gc_meter.gc_passes == 1
        assert dep.gc_meter.log_bytes_reclaimed == reclaimed
        assert dep.gc_meter.entries_discarded > 0
        after = {n: node.log.size_bytes() for n, node in dep.nodes.items()}
        assert sum(after.values()) < sum(before.values())
        assert any(node.log.truncated for node in dep.nodes.values())
        # The standing auditor keeps working across the truncation.
        nodes["b"].insert(link("b", "y", 9))
        dep.run()
        qp.refresh()
        result = qp.why(best_cost("c", "d", 5))
        assert result.is_clean()

    def test_cold_build_after_gc_is_checkpoint_seeded_and_green(self):
        dep, _nodes, _qp = self._grown(seed=411)
        dep.run_gc(checkpoint=False)
        cold = QueryProcessor(dep)
        result = cold.why(best_cost("c", "d", 5))
        assert not result.red_vertices()
        view = cold.mq.view_of("c")
        assert view.status == OK
        assert view.base_index == dep.nodes["c"].log.first_index
        assert view.base_index > 1

    def test_absence_below_the_floor_resolves_yellow_not_red(self):
        dep, nodes, qp = self._grown(seed=412)
        # A vertex the pre-GC auditor verified below the eventual floor:
        # the *closed* exist interval of the link a→z=2 costs, or any
        # vertex from the truncated prefix that is no longer extant.
        view_before = qp.mq.view_of("a")
        pre_vertices = [
            v for v in view_before.graph.vertices() if v.t_end is not None
        ]
        assert pre_vertices
        dep.run_gc(checkpoint=False)
        floor_t = dep.retention_floors["a"].floor_time
        gone = [v for v in pre_vertices if v.t < floor_t]
        assert gone, "expected closed intervals below the retention floor"
        cold = QueryProcessor(dep)
        from repro.provgraph.graph import _clone_vertex
        for vertex in gone:
            probe = _clone_vertex(vertex)
            resolved, color = cold.mq.resolve(probe)
            assert color != "red", (
                "absence below the GC floor must never be treated as "
                f"proof: {vertex.describe()} resolved {color}"
            )

    def test_enable_gc_cadence_bounds_logs(self):
        dep, nodes = _net(seed=413)
        qp = _standing_auditor(dep)
        dep.enable_gc(2.0)
        for k in range(3):
            nodes["a"].insert(link("a", f"x{k}", 3 + k))
            dep.run_until(dep.sim.now + 2.5)
            qp.refresh()
        dep.run()
        assert dep.gc_meter.gc_passes >= 3
        assert dep.gc_meter.log_bytes_reclaimed > 0
        with pytest.raises(ConfigurationError):
            dep.enable_gc(0)
        dep.disable_gc()


class TestAdversarialGc:
    def test_over_eager_truncator_convicted(self):
        dep, nodes = _net(seed=420, overrides={"b": OverTruncatingNode})
        qp = _standing_auditor(dep)
        dep.checkpoint_all()               # the floor-eligible checkpoint
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        dep.checkpoint_all()               # newer checkpoint, above marks
        nodes["b"].insert(link("b", "y", 9))
        dep.run()
        dep.run_gc(checkpoint=False)
        advertised = dep.advertised_floor_of("b")
        assert nodes["b"].log.first_index > advertised, \
            "the adversary must actually truncate below its advertisement"
        # Over-truncation is not a handshake-time fault (the signed
        # advertisement itself was honest) ...
        assert dep.maintainer.retention_fault_of("b") is None
        # ... but any full build observes the missing coverage: proof.
        cold = QueryProcessor(dep)
        view = cold.mq.view_of("b")
        assert view.status == PROVEN_FAULTY
        assert "retention" in view.verdict_reason
        # Every vertex hosted on the violator resolves red — proof, not
        # suspicion (the standing auditor's pre-GC view supplies probes).
        from repro.provgraph.graph import _clone_vertex
        probe = _clone_vertex(
            next(iter(qp.mq.view_of("b").graph.vertices()))
        )
        _resolved, color = cold.mq.resolve(probe)
        assert color == "red"

    def test_floor_liar_convicted_at_handshake(self):
        dep, nodes = _net(seed=421, overrides={"b": FloorLiarNode})
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()                       # b's newest checkpoint > marks
        dep.run_gc(checkpoint=True)
        faults = dep.maintainer.retention_faults
        assert any(f["node"] == "b" for f in faults)
        fault = next(f for f in faults if f["node"] == "b")
        assert fault["advert"].floor_index > fault["mark"]
        # The conviction reaches every querier without trusting b again.
        qp.refresh()
        assert qp.mq.view_of("b").status == PROVEN_FAULTY
        cold = QueryProcessor(dep)
        assert cold.mq.view_of("b").status == PROVEN_FAULTY
        result = cold.why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()

    def test_honest_nodes_unaffected_by_a_convicted_liar(self):
        dep, nodes = _net(seed=422, overrides={"b": FloorLiarNode})
        _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.run_gc()
        cold = QueryProcessor(dep)
        for name in dep.nodes:
            expected = PROVEN_FAULTY if name == "b" else OK
            assert cold.mq.view_of(name).status == expected

    def test_pre_gc_conviction_remains_reproducible(self):
        dep, nodes = _net(seed=423, overrides={"b": ForkingNode})
        qp = _standing_auditor(dep)
        assert qp.mq.view_of("b").status == OK
        nodes["b"].fork_log(keep_upto=3)
        nodes["b"].insert(link("b", "w", 8))
        dep.run()
        qp.refresh()
        assert qp.mq.view_of("b").status == PROVEN_FAULTY
        reason = qp.mq.view_of("b").verdict_reason
        # GC the honest nodes; the forker's conviction must survive both
        # the pass and later refreshes (signed proof does not expire).
        dep.run_gc()
        qp.refresh()
        view = qp.mq.view_of("b")
        assert view.status == PROVEN_FAULTY
        assert view.verdict_reason == reason

    def test_crashed_origin_served_from_gcd_mirror(self):
        dep, nodes = _net(seed=424)
        dep.enable_replication(2.0)
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()                       # replication ships the checkpoints
        qp.refresh()
        dep.run_gc(checkpoint=False)
        assert dep.gc_meter.mirror_bytes_reclaimed > 0
        mirror = dep.find_mirror("a")
        assert mirror.checkpoint is not None
        assert mirror.start_index == mirror.checkpoint.index + 1

        # Crash the origin: retrieve goes dark, wires are dropped.
        dep.drop_wires_to("a")
        dep.nodes["a"].retrieve = lambda **kwargs: None
        cold = QueryProcessor(dep)
        view = cold.mq.view_of("a")
        assert view.status == OK
        assert view.base_index == mirror.checkpoint.index
        result = cold.why(best_cost("c", "d", 5))
        assert not result.red_vertices()
        del dep.nodes["a"].retrieve


class TestRetentionHardening:
    """Adversarial edge paths around the floor machinery: a stale
    checkpoint cannot be paired with a deeper suffix, a self-truncated
    origin cannot shrink a replica's evidence, checkable pending
    evidence is never tombstoned, and the GC cadence is honored."""

    def test_stale_checkpoint_with_deeper_suffix_is_proof(self):
        dep, nodes = _net(seed=440)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.checkpoint_all()
        node = dep.nodes["a"]
        chk1 = next(e for e in node.log.entries if e.entry_type == "chk")
        honest = node.retrieve(from_checkpoint=True)
        assert honest.checkpoint.index > chk1.index
        from repro.snp.snoopy import RetrieveResponse
        forged = RetrieveResponse(
            node="a", entries=honest.entries,
            start_index=honest.start_index, start_hash=honest.start_hash,
            head_auth=honest.head_auth, checkpoint=chk1,
        )
        node.retrieve = lambda **kwargs: forged
        try:
            qp = QueryProcessor(dep, use_checkpoints=True)
            view = qp.mq.view_of("a")
        finally:
            del node.retrieve
        assert view.status == PROVEN_FAULTY
        assert "does not anchor" in view.verdict_reason

    def test_truncated_push_cannot_shrink_a_fuller_mirror(self):
        dep, nodes = _net(seed=441)
        node = dep.nodes["a"]
        full_copy = node.retrieve()
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        chk = node.log.last_checkpoint_before(len(node.log))
        node.log.truncate_below(chk.index)
        pushed = node.retrieve()        # checkpoint-anchored, newer head
        assert pushed.checkpoint is not None
        assert pushed.head_auth.index > full_copy.head_auth.index
        from repro.snp.snoopy import merge_mirror_responses
        assert merge_mirror_responses(full_copy, pushed) is None
        # A replica holding nothing still accepts it (it can seed).
        assert merge_mirror_responses(None, pushed) is pushed

    def test_checkable_pending_evidence_is_checked_not_tombstoned(self):
        dep, _nodes = _net(seed=442)
        node = dep.nodes["a"]
        full = node.retrieve()
        entry = node.log.entry(2)
        from repro.snp.evidence import sign_authenticator
        from repro.snp.wire import BuildContext, BuildWork, compute_build
        good = sign_authenticator(node.identity, 2, entry.timestamp,
                                  entry.entry_hash)
        context = BuildContext(
            {n: dep.public_key_of(n) for n in dep.nodes},
            t_prop=dep.effective_t_prop(),
        )
        # The advertised floor is far above entry 2, but the segment in
        # hand starts at entry 1: the evidence is checkable NOW, so it
        # must be checked (and recovered), never drained unexamined.
        work = BuildWork("a", "built", full, pending=(good,),
                         floor=len(node.log), floor_strict=False,
                         factory=dep.app_factories["a"],
                         consistency=())
        outcome = compute_build(work, context)
        assert outcome.status == outcome.OK
        assert bytes(good.signature) in outcome.recovered
        assert not outcome.tombstoned
        assert outcome.stats.auth_checks_tombstoned == 0
        assert outcome.stats.auth_checks_recovered == 1
        # An equivocating authenticator in the same position is proof —
        # the conviction a premature tombstone would have discarded.
        bad = sign_authenticator(node.identity, 2, entry.timestamp,
                                 "f" * 64)
        work = BuildWork("a", "built", full, pending=(bad,),
                         floor=len(node.log), floor_strict=False,
                         factory=dep.app_factories["a"],
                         consistency=())
        outcome = compute_build(work, context)
        assert outcome.status == outcome.VERIFY_FAILED

    def test_pending_below_anchor_and_floor_is_tombstoned(self):
        dep, nodes = _net(seed=443)
        node = dep.nodes["a"]
        entry = node.log.entry(2)
        from repro.snp.evidence import sign_authenticator
        from repro.snp.wire import BuildContext, BuildWork, compute_build
        old = sign_authenticator(node.identity, 2, entry.timestamp,
                                 entry.entry_hash)
        dep.checkpoint_all()
        chk = node.log.last_checkpoint_before(len(node.log))
        node.log.truncate_below(chk.index)
        truncated = node.retrieve()
        assert truncated.start_index > 2
        context = BuildContext(
            {n: dep.public_key_of(n) for n in dep.nodes},
            t_prop=dep.effective_t_prop(),
        )
        work = BuildWork("a", "built", truncated, pending=(old,),
                         floor=chk.index, floor_strict=False,
                         factory=dep.app_factories["a"],
                         consistency=())
        outcome = compute_build(work, context)
        assert outcome.status == outcome.OK
        assert bytes(old.signature) in outcome.tombstoned
        assert outcome.stats.auth_checks_tombstoned == 1

    def test_lagging_mirror_reseeds_at_a_sanctioned_floor(self):
        dep, nodes = _net(seed=445)
        dep.replicate_deltas()     # replicas hold full (pre-GC) copies
        # Activity the replicas never hear about: the eventual floors
        # land strictly above the stored heads plus their tombstones.
        nodes["a"].insert(link("a", "w", 4))
        dep.run()
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        dep.run_gc(checkpoint=False)   # floors pass the stale mirror heads
        origin = dep.nodes["a"]
        assert origin.log.truncated
        floor = dep.advertised_floor_of("a")
        holders = [n for n in dep.nodes.values()
                   if n.node_id != "a" and n.mirror_of("a") is not None]
        stale = [h for h in holders
                 if h.mirror_of("a").head_auth.index < len(origin.log)]
        assert stale, "expected replicas lagging behind the GC'd origin"
        # The next delta pass must not freeze: the sanctioned
        # checkpoint-anchored fallback re-seeds the stale copies.
        before_bytes = dep.traffic.totals()["replication"]
        pushes = dep.replicate_deltas()
        assert pushes > 0
        for holder in stale:
            mirror = holder.mirror_of("a")
            assert mirror.head_auth.index == len(origin.log)
            assert mirror.start_index == floor + 1
        assert dep.traffic.totals()["replication"] > before_bytes
        # And a now-quiescent pass stores nothing — so it charges nothing.
        before_bytes = dep.traffic.totals()["replication"]
        assert dep.replicate_deltas() == 0
        assert dep.traffic.totals()["replication"] == before_bytes

    def test_unsanctioned_truncation_does_not_reseed_mirrors(self):
        dep, nodes = _net(seed=446, overrides={"b": FloorLiarNode})
        dep.replicate_deltas()
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        dep.run_gc(checkpoint=True)    # convicts b, which self-truncates
        assert dep.maintainer.retention_fault_of("b") is not None
        assert nodes["b"].log.truncated
        stored_heads = {
            n.node_id: n.mirror_of("b").head_auth.index
            for n in dep.nodes.values()
            if n.node_id != "b" and n.mirror_of("b") is not None
        }
        assert stored_heads
        dep.replicate_deltas()
        for holder in dep.nodes.values():
            mirror = holder.mirror_of("b")
            if mirror is None or holder.node_id == "b":
                continue
            # The fuller pre-truncation evidence is kept, not replaced
            # by the convicted liar's shallower re-push.
            assert mirror.start_index == 1
            assert mirror.head_auth.index \
                == stored_heads[holder.node_id]

    def test_mirror_reclaim_counts_only_dropped_entries(self):
        dep, nodes = _net(seed=447)
        dep.enable_replication(2.0)
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        stored_before = {
            (holder.node_id, origin):
                [e.size_bytes() for e in resp.entries]
            for holder in dep.nodes.values()
            for origin, resp in holder.mirror_store.items()
        }
        floors_stored = {
            (holder.node_id, origin): resp.start_index
            for holder in dep.nodes.values()
            for origin, resp in holder.mirror_store.items()
        }
        dep.run_gc(checkpoint=False)
        expected = 0
        for holder in dep.nodes.values():
            for origin, resp in holder.mirror_store.items():
                key = (holder.node_id, origin)
                if resp.checkpoint is None:
                    continue  # untrimmed
                start = floors_stored[key]
                dropped = resp.checkpoint.index - start
                if dropped > 0:
                    expected += sum(stored_before[key][:dropped])
        assert dep.gc_meter.mirror_bytes_reclaimed == expected
        assert expected > 0

    def test_run_honors_the_gc_cadence(self):
        dep, nodes = _net(seed=444)
        _standing_auditor(dep)
        head_lens = {n: len(node.log) for n, node in dep.nodes.items()}
        dep.enable_gc(100.0)
        for _ in range(3):
            dep.run()
        # Not yet due: no pass ran, no checkpoint entries were appended.
        assert dep.gc_meter.gc_passes == 0
        assert {n: len(node.log) for n, node in dep.nodes.items()} \
            == head_lens
        dep.run_until(dep.sim.now + 101.0)
        assert dep.gc_meter.gc_passes == 1


class TestPostGcExecutorEquivalence:
    def _gcd_net(self, seed=430, overrides=None):
        dep, nodes = _net(seed=seed, overrides=overrides)
        qp = _standing_auditor(dep)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        dep.run_gc(checkpoint=False)
        dep.unregister_querier(qp)
        qp.close()
        return dep

    def _outcome(self, dep, executor):
        with QueryProcessor(dep, executor=executor) as qp:
            result = qp.why(best_cost("c", "d", 5), scope=5)
            return {
                "colors": _fingerprint(result),
                "faulty": result.faulty_nodes(),
                "counters": qp.mq.stats.counters(),
                "views": {str(n): v.status for n, v in qp.mq._views.items()},
                "bases": {str(n): v.base_index
                          for n, v in qp.mq._views.items()
                          if v.status == OK},
            }

    def test_serial_thread_wire_identical_post_gc(self):
        dep = self._gcd_net()
        serial = self._outcome(dep, None)
        assert serial["bases"] and all(b > 1 for b in serial["bases"].values())
        assert self._outcome(dep, 4) == serial
        assert self._outcome(dep, "wire") == serial

    def test_wire_identical_with_over_truncator(self):
        dep = self._gcd_net(seed=431, overrides={"b": OverTruncatingNode})
        serial = self._outcome(dep, None)
        assert self._outcome(dep, "wire") == serial
        assert self._outcome(dep, 2) == serial

    @pytest.mark.slow
    def test_process_pool_identical_post_gc(self):
        dep = self._gcd_net(seed=432)
        serial = self._outcome(dep, None)
        assert self._outcome(dep, "process:2") == serial
