"""Application-level integration: path-vector, Chord, BGP, MapReduce.

These are the paper's Section 6/7 scenarios at test scale: Chord lookups
with an Eclipse attacker, the Quagga-Disappear and Quagga-BadGadget
queries, and the Hadoop-Squirrel corrupt mapper.
"""

import pytest

from repro.apps import pathvector
from repro.apps.bgp import (
    announce, build_bad_gadget, build_disappear_scenario, route,
    trigger_disappear,
)
from repro.apps.chord import ChordNetwork, lookup_result
from repro.apps.mapreduce import WordCountJob, OFFSETS, COMBINED
from repro.model import Tup
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import FabricatorNode
from repro.workloads import ZipfCorpus


class TestPathVector:
    @pytest.fixture(scope="class")
    def net(self):
        dep = Deployment(seed=61, key_bits=256)
        edges = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")]
        nodes = pathvector.build_network(dep, edges)
        dep.run()
        return dep, nodes

    def test_shortest_paths_selected(self, net):
        dep, nodes = net
        best = nodes["a"].app.tuples_of("bestRoute")
        by_dest = {t.args[0]: t.args[1] for t in best}
        assert by_dest["b"] == ("a", "b")
        assert by_dest["c"] in (("a", "b", "c"), ("a", "d", "c"))
        assert len(by_dest["c"]) == 3

    def test_no_loops_in_any_route(self, net):
        dep, nodes = net
        for node in nodes.values():
            for tup in node.app.tuples_of("route"):
                path = tup.args[1]
                assert len(path) == len(set(path))

    def test_link_failure_reroutes(self, net):
        dep, nodes = net
        nodes["a"].delete(pathvector.link("a", "b"))
        nodes["b"].delete(pathvector.link("b", "a"))
        dep.run()
        best = {t.args[0]: t.args[1]
                for t in nodes["a"].app.tuples_of("bestRoute")}
        assert best["b"] == ("a", "d", "c", "b")

    def test_route_provenance_clean(self, net):
        dep, nodes = net
        qp = QueryProcessor(dep)
        best = {t.args[0]: t.args[1]
                for t in nodes["a"].app.tuples_of("bestRoute")}
        result = qp.why(pathvector.best_route("a", "b", best["b"]))
        assert result.is_clean()


class TestChord:
    @pytest.fixture(scope="class")
    def ring(self):
        dep = Deployment(seed=62, key_bits=256)
        net = ChordNetwork(dep, n_nodes=8, ring_bits=10, seed=5)
        net.bootstrap(neighbors=2)
        net.stabilize(rounds=2)
        return dep, net

    def test_successors_follow_ring_order(self, ring):
        dep, net = ring
        members = net.members
        for index, (name, _rid) in enumerate(members):
            succs = dep.node(name).app.tuples_of("succ")
            assert len(succs) == 1
            expected = members[(index + 1) % len(members)][0]
            assert succs[0].args[0] == expected

    def test_fingers_populated(self, ring):
        dep, net = ring
        for name, _rid in net.members:
            assert dep.node(name).app.tuples_of("finger")

    def test_lookup_resolves_to_true_owner(self, ring):
        dep, net = ring
        for key in (100, 400, 900):
            results = net.lookup("n0", key, f"req-{key}")
            assert results, f"lookup {key} unresolved"
            owner, owner_id = net.owner_of(key)
            assert results[0].args[2] == owner

    def test_lookup_provenance_spans_hops_and_is_clean(self, ring):
        dep, net = ring
        results = net.lookup("n1", 700, "req-prov")
        qp = QueryProcessor(dep)
        res = qp.why(results[0], node="n1")
        assert res.is_clean()
        hops = {str(v.node) for v in res.vertices()}
        assert len(hops) >= 2

    def test_eclipse_by_fabricated_result_detected(self):
        dep = Deployment(seed=63, key_bits=256)
        net = ChordNetwork(dep, n_nodes=8, ring_bits=10, seed=5,
                           node_overrides={"n3": FabricatorNode})
        net.bootstrap(neighbors=2)
        net.stabilize(rounds=2)
        attacker = dep.node("n3")
        bogus = lookup_result("n0", "req-X", 700, "n3",
                              net.ring_id("n3"))
        attacker.fabricate("+", bogus, "n0")
        dep.run()
        qp = QueryProcessor(dep)
        res = qp.why(bogus, node="n0")
        assert "n3" in res.faulty_nodes()

    def test_eclipse_by_input_lie_visible_in_provenance(self):
        # Chord-Finger query: the poisoned finger's provenance bottoms out
        # at the attacker's knownNode insert (black, but attributable).
        dep = Deployment(seed=64, key_bits=256)
        net = ChordNetwork(dep, n_nodes=8, ring_bits=10, seed=5)
        net.bootstrap(neighbors=2)
        claimed = net.poison_known_nodes("n2")
        net.stabilize(rounds=3)
        qp = QueryProcessor(dep)
        # Find a finger somewhere that now points at the attacker's
        # claimed id and trace it.
        for name, _rid in net.members:
            for f in dep.node(name).app.tuples_of("finger"):
                if f.args[2] == claimed:
                    res = qp.why(f, node=name, scope=30)
                    inserts = [v for v in res.vertices()
                               if v.vtype == "insert"
                               and v.tup.relation == "knownNode"
                               and v.tup.args[1] == claimed]
                    assert inserts
                    assert all(v.node == "n2" for v in inserts)
                    return
        pytest.fail("poisoned finger never propagated")


class TestBgpDisappear:
    @pytest.fixture(scope="class")
    def scenario(self):
        dep = Deployment(seed=65, key_bits=256)
        net, prefix = build_disappear_scenario(dep)
        net.converge()
        return dep, net, prefix

    def test_alice_initially_has_route(self, scenario):
        dep, net, prefix = scenario
        assert dep.node("alice").app.tuples_of("route")

    def test_route_disappears_after_trigger(self, scenario):
        dep, net, prefix = scenario
        trigger_disappear(net, prefix)
        assert not dep.node("alice").app.tuples_of("route")

    def test_disappear_query_reaches_j_policy_decision(self, scenario):
        dep, net, prefix = scenario
        qp = QueryProcessor(dep)
        res = qp.why_disappear(
            route("alice", prefix, ("alice", "j", "c1", "mid", "origin")))
        assert res.is_clean()
        # The chain passes j's withdrawn export (its M2 choice token).
        deletes = [v for v in res.vertices()
                   if v.vtype == "delete" and v.node == "j"]
        assert any(v.tup.relation.startswith("__choice__M2")
                   for v in deletes)

    def test_replacement_edge_links_new_route(self, scenario):
        dep, net, prefix = scenario
        qp = QueryProcessor(dep)
        # Section 3.4 constraint: the new route's appearance is causally
        # tied to the old route's disappearance via a replacement edge, so
        # asking why the c2 route appeared explains the c1 route's demise.
        res = qp.why_appear(route("j", prefix, ("j", "c2", "origin")),
                            node="j", scope=6)
        old = route("j", prefix, ("j", "c1", "mid", "origin"))
        disappears = [v for v in res.vertices()
                      if v.vtype == "disappear" and v.tup == old]
        assert disappears


class TestBadGadget:
    def test_oscillation_never_converges(self):
        dep = Deployment(seed=66, key_bits=256)
        net, prefix = build_bad_gadget(dep)
        rounds = net.converge(max_rounds=12)
        assert rounds == 12  # hit the cap: no fixpoint
        flutter = [c for c in net.route_changes if c[0] >= 4]
        assert flutter  # still changing late in the run

    def test_fluttering_route_provenance_is_clean_and_cyclic(self):
        dep = Deployment(seed=67, key_bits=256)
        net, prefix = build_bad_gadget(dep)
        net.converge(max_rounds=10)
        qp = QueryProcessor(dep)
        selection = net.routing_table("as1").get(prefix)
        assert selection is not None
        res = qp.why(route("as1", prefix, selection[0]), scope=30)
        assert res.is_clean()  # a misconfiguration, not an attack
        # The flutter is visible as (dis)appearances of the same prefix's
        # routes in as1's history.
        intervals = qp.history_of(route("as1", prefix, ("as1", "as0")))
        assert len(intervals) >= 2  # appeared and re-appeared


class TestMapReduce:
    def _run_job(self, corrupt=False, granularity=COMBINED, seed=68):
        dep = Deployment(seed=seed, key_bits=256)
        store = {}
        corrupt_spec = (
            {"map1": {"target_word": "squirrel", "extra_count": 25}}
            if corrupt else None
        )
        job = WordCountJob(dep, store, n_mappers=3, n_reducers=2,
                           granularity=granularity,
                           corrupt_mappers=corrupt_spec)
        corpus = ZipfCorpus(n_words=120, vocabulary=30, seed=3,
                            planted={"squirrel": 5})
        results = job.run(corpus.splits(3))
        return dep, job, corpus, results

    def test_honest_counts_match_ground_truth(self):
        dep, job, corpus, results = self._run_job()
        truth = {}
        for word in corpus.words():
            truth[word] = truth.get(word, 0) + 1
        assert results == truth

    def test_honest_provenance_clean(self):
        dep, job, corpus, results = self._run_job()
        out = job.output_tuple_for("squirrel")
        res = QueryProcessor(dep).why(out)
        assert res.is_clean()
        mappers = {str(v.node) for v in res.vertices()
                   if str(v.node).startswith("map")}
        assert mappers  # provenance reaches the map side

    def test_corrupt_mapper_inflates_count(self):
        dep, job, corpus, results = self._run_job(corrupt=True)
        assert results["squirrel"] == 5 + 25

    def test_squirrel_query_identifies_corrupt_mapper(self):
        dep, job, corpus, results = self._run_job(corrupt=True)
        out = job.output_tuple_for("squirrel")
        res = QueryProcessor(dep).why(out, scope=8)
        assert res.faulty_nodes() == ["map1"]

    def test_offsets_granularity_shows_per_occurrence_vertices(self):
        dep, job, corpus, results = self._run_job(granularity=OFFSETS)
        out = job.output_tuple_for("squirrel")
        # The map-side per-occurrence layer sits ~10 edges below the
        # output (Figure 4's full depth).
        res = QueryProcessor(dep).why(out, scope=14)
        map_outs = [v for v in res.vertices()
                    if v.tup is not None and v.tup.relation == "mapOut"]
        assert len(map_outs) >= results["squirrel"]

    def test_effects_query_bounds_damage(self):
        dep, job, corpus, results = self._run_job(corrupt=True)
        # Which outputs did the corrupt mapper's shuffle data influence?
        from repro.apps.mapreduce import partition_for
        reducer = job.reducers[partition_for("squirrel", 2)]
        node = dep.node(reducer)
        sh = next(t for t in node.app.tuples_of("shuffle")
                  if t.args[1] == "map1" and t.args[2] == "squirrel")
        qp = QueryProcessor(dep)
        res = qp.effects(sh, node=reducer, scope=4)
        touched = {v.tup for v in res.vertices()
                   if v.tup is not None and v.tup.relation == "output"}
        assert any(t.args[1] == "squirrel" for t in touched)
