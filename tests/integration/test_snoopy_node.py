"""SNooPyNode machinery: commitment protocol, checkpoints, batching,
missing-ack alarms, retrieve semantics."""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.log import SND, RCV, ACK, INS, CHK


class TestCommitmentProtocol:
    def test_every_send_gets_ack_entry(self, mincost_net):
        dep, nodes = mincost_net
        for node in nodes.values():
            snd_count = sum(1 for e in node.log.entries
                            if e.entry_type == SND)
            ack_count = sum(len(e.aux["wire_ack"].msgs)
                            for e in node.log.entries
                            if e.entry_type == ACK)
            assert ack_count == snd_count

    def test_no_missing_ack_alarms_in_healthy_run(self, mincost_net):
        dep, nodes = mincost_net
        assert dep.maintainer.missing_ack_alarms == []
        assert dep.maintainer.rejected_wires == []

    def test_authenticators_accumulate(self, mincost_net):
        dep, nodes = mincost_net
        # Every node that received traffic holds evidence about its peers.
        c = nodes["c"]
        assert c.received_auths  # at least one peer
        for peer, auths in c.received_auths.items():
            assert auths

    def test_crashed_receiver_raises_alarm(self):
        dep = Deployment(seed=3, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.drop_wires_to("c")  # c crashes (stops receiving)
        nodes["b"].insert(link("b", "z", 9))  # triggers updates toward c
        dep.run()
        alarms = dep.maintainer.missing_ack_alarms
        assert any(a["node"] == "b" and a["dst"] == "c" for a in alarms)

    def test_alarmed_sends_not_red(self):
        dep = Deployment(seed=3, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.drop_wires_to("c")
        nodes["b"].insert(link("b", "z", 9))
        dep.run()
        nodes["b"].insert(link("b", "z2", 9))  # later event would flag
        dep.run()
        qp = QueryProcessor(dep)
        view = qp.mq.view_of("b")
        assert view.status == "ok"
        assert not view.graph.red_vertices()


class TestCheckpoints:
    def test_checkpoint_entry_recorded(self, mincost_net):
        dep, nodes = mincost_net
        nodes["c"].checkpoint()
        assert any(e.entry_type == CHK for e in nodes["c"].log.entries)

    def test_retrieve_from_checkpoint_shortens_segment(self, mincost_net):
        dep, nodes = mincost_net
        full = nodes["c"].retrieve()
        nodes["c"].checkpoint()
        seg = nodes["c"].retrieve(from_checkpoint=True)
        assert len(seg.entries) < len(full.entries) + 2
        assert seg.checkpoint is not None
        assert seg.start_index == seg.checkpoint.index + 1

    def test_checkpointed_query_still_correct(self):
        dep = Deployment(seed=8, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.checkpoint_all()
        # Cause more activity after the checkpoint.
        nodes["b"].insert(link("b", "z", 4))
        dep.run()
        qp = QueryProcessor(dep, use_checkpoints=True)
        result = qp.why(best_cost("c", "d", 5))
        assert result.root is not None
        # All vertices resolved from checkpoint-seeded replays are sound:
        # nothing is red on this healthy network.
        assert not result.red_vertices()

    def test_checkpoint_download_smaller(self):
        dep = Deployment(seed=8, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.checkpoint_all()
        nodes["b"].insert(link("b", "z", 4))
        dep.run()
        full_qp = QueryProcessor(dep, use_checkpoints=False)
        r_full = full_qp.why(best_cost("c", "d", 5))
        chk_qp = QueryProcessor(dep, use_checkpoints=True)
        r_chk = chk_qp.why(best_cost("c", "d", 5))
        assert r_chk.stats.log_bytes < r_full.stats.log_bytes


class TestBatching:
    def _traffic(self, t_batch):
        dep = Deployment(seed=5, key_bits=256, t_batch=t_batch)
        build_paper_network(dep)
        dep.run()
        return dep

    def test_batching_reduces_signatures(self):
        plain = self._traffic(0.0)
        batched = self._traffic(0.1)
        assert batched.crypto_counter_totals().signatures < \
            plain.crypto_counter_totals().signatures

    def test_batching_reduces_wire_overhead(self):
        plain = self._traffic(0.0)
        batched = self._traffic(0.1)
        assert batched.traffic.overhead_factor() < \
            plain.traffic.overhead_factor()

    def test_batching_preserves_correctness(self):
        dep = self._traffic(0.1)
        qp = QueryProcessor(dep)
        result = qp.why(best_cost("c", "d", 5))
        assert result.is_clean()

    def test_batches_carry_multiple_messages(self):
        dep = self._traffic(0.1)
        assert dep.traffic.messages_sent > dep.traffic.batches_sent


class TestRetrieve:
    def test_empty_log_returns_none(self, deployment):
        from repro.apps.mincost import mincost_factory
        node = deployment.add_node("lonely", mincost_factory())
        assert node.retrieve() is None
        assert node.head_authenticator() is None

    def test_head_authenticator_matches_log(self, mincost_net):
        dep, nodes = mincost_net
        auth = nodes["c"].head_authenticator()
        assert auth.index == len(nodes["c"].log)
        assert auth.entry_hash == nodes["c"].log.head_hash()

    def test_retrieve_covers_whole_log(self, mincost_net):
        dep, nodes = mincost_net
        response = nodes["c"].retrieve()
        assert response.start_index == 1
        assert len(response.entries) == len(nodes["c"].log)
