"""Figure 2 reproduction: the provenance tree of bestCost(@c,d,5).

The paper's running example: router c's best cost to d is 5, derivable
both from its direct link (cost 5) and via b (2+3). The provenance tree
must contain the cross-node chain derive(R3) ← believe-appear ← receive ←
send ← appear ← derive(R2) ← {link exist, bestCost appear} ← derive(R1) ←
insert, with every vertex black.
"""

import pytest

from repro.apps.mincost import best_cost, cost, link
from repro.provgraph.vertices import (
    APPEAR, BELIEVE_APPEAR, DERIVE, EXIST, INSERT, RECEIVE, SEND,
)
from repro.snp import QueryProcessor


class TestFigure2:
    @pytest.fixture(autouse=True)
    def _query(self, mincost_query):
        self.dep, self.nodes, self.qp = mincost_query
        self.result = self.qp.why(best_cost("c", "d", 5))

    def test_best_cost_value_matches_paper(self):
        got = self.nodes["c"].app.tuples_of("bestCost")
        assert best_cost("c", "d", 5) in got

    def test_all_black(self):
        assert self.result.is_clean()
        assert self.result.faulty_nodes() == []

    def test_root_is_exist_vertex(self):
        assert self.result.root.vtype == EXIST
        assert self.result.root.tup == best_cost("c", "d", 5)

    def _types(self):
        return {v.vtype for v in self.result.vertices()}

    def test_contains_cross_node_chain(self):
        types = self._types()
        for required in (DERIVE, APPEAR, EXIST, BELIEVE_APPEAR, RECEIVE,
                         SEND, INSERT):
            assert required in types, f"missing {required}"

    def test_derivations_present(self):
        rules = {v.rule for v in self.result.vertices()
                 if v.vtype == DERIVE}
        assert {"R1", "R2", "R3"} <= rules

    def test_leaves_are_base_inserts(self):
        # Walking backwards must bottom out at link insertions.
        inserts = {v.tup for v in self.result.vertices()
                   if v.vtype == INSERT}
        assert link("b", "c", 2) in inserts
        assert link("b", "d", 3) in inserts

    def test_remote_derivation_attributed_to_b(self):
        # cost(@c,d,b,5) is derived ON b (Figure 2's key structural point).
        derives = [v for v in self.result.vertices()
                   if v.vtype == DERIVE and v.tup == cost("c", "d", "b", 5)]
        assert derives and all(v.node == "b" for v in derives)

    def test_send_receive_pair_linked(self):
        sends = [v for v in self.result.vertices() if v.vtype == SEND]
        receives = [v for v in self.result.vertices()
                    if v.vtype == RECEIVE]
        assert sends and receives
        send_keys = {v.msg.full_key() for v in sends}
        assert all(r.msg.full_key() in send_keys for r in receives)

    def test_pretty_rendering_mentions_vertices(self):
        text = self.result.pretty()
        assert "EXIST(c, bestCost(@c, 'd', 5)" in text
        assert "SEND(b, c" in text


class TestOtherQueriesOnMincost:
    def test_effects_forward_query(self, mincost_query):
        dep, nodes, qp = mincost_query
        result = qp.effects(link("b", "d", 3), scope=20)
        derived = {v.tup for v in result.vertices() if v.vtype == APPEAR}
        # The link ultimately feeds c's bestCost to d.
        assert any(t == best_cost("c", "d", 5) for t in derived)

    def test_historical_query_after_change(self, mincost_query):
        dep, nodes, qp = mincost_query
        t_before = dep.sim.now
        nodes["c"].delete(link("c", "d", 5))
        nodes["d"].delete(link("d", "c", 5))
        dep.run()
        qp2 = QueryProcessor(dep)
        # Historical: why did cost(@c,d,d,5) exist back then?
        res = qp2.why(cost("c", "d", "d", 5), at=t_before - 0.02)
        assert res.root.vtype == EXIST
        assert res.root.t_end is not None  # closed by the deletion

    def test_dynamic_disappear_query(self, mincost_query):
        dep, nodes, qp = mincost_query
        nodes["c"].delete(link("c", "d", 5))
        nodes["d"].delete(link("d", "c", 5))
        dep.run()
        qp2 = QueryProcessor(dep)
        res = qp2.why_disappear(cost("c", "d", "d", 5))
        assert res.is_clean()
        # The cause chain reaches the delete event.
        assert any(v.vtype == "delete" for v in res.vertices())

    def test_scope_limits_exploration(self, mincost_query):
        dep, nodes, qp = mincost_query
        shallow = qp.why(best_cost("c", "d", 5), scope=2)
        deep = QueryProcessor(dep).why(best_cost("c", "d", 5), scope=50)
        assert len(shallow.graph) < len(deep.graph)

    def test_history_of_reports_intervals(self, mincost_query):
        dep, nodes, qp = mincost_query
        intervals = qp.history_of(cost("c", "d", "d", 5))
        assert len(intervals) == 1
        assert intervals[0][1] is None  # still open

    def test_query_error_for_unknown_tuple(self, mincost_query):
        from repro.util.errors import QueryError
        dep, nodes, qp = mincost_query
        with pytest.raises(QueryError):
            qp.why(best_cost("c", "zzz", 1))

    def test_repeat_query_hits_cache(self, mincost_query):
        dep, nodes, qp = mincost_query
        first = qp.why(best_cost("c", "d", 5))
        second = qp.why(best_cost("c", "d", 5))
        assert second.stats.logs_fetched == 0
        assert second.stats.cache_hits > 0
        assert first.stats.logs_fetched > 0
