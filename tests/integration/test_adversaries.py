"""Fault-injection matrix: every adversary behavior vs. detection outcome.

The paper's completeness property (Theorem 6): every *detectably* faulty
node yields at least one red or yellow vertex when queried. Its accuracy
property (Theorem 5): correct nodes stay black no matter what the
adversary does. The known limitation (Section 4.2): lies about local
inputs are not automatically detectable.
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, cost, link
from repro.model import Tup
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import (
    FabricatorNode, ForkingNode, InputLiarNode, MisexecutingNode,
    SilentNode, SuppressorNode, TamperingNode,
)


def _deploy(adversary_cls=None, victim="b", seed=77):
    dep = Deployment(seed=seed, key_bits=256)
    overrides = {victim: adversary_cls} if adversary_cls else {}
    nodes = build_paper_network(dep, node_overrides=overrides)
    dep.run()
    return dep, nodes


class TestFabrication:
    def test_fabricated_tuple_traced_to_red_send(self):
        dep, nodes = _deploy(FabricatorNode)
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        qp = QueryProcessor(dep)
        result = qp.why(best_cost("c", "d", 1))
        assert "b" in result.faulty_nodes()

    def test_correct_nodes_stay_black_under_fabrication(self):
        dep, nodes = _deploy(FabricatorNode)
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        qp = QueryProcessor(dep)
        result = qp.why(best_cost("c", "d", 1))
        for vertex in result.red_vertices():
            assert vertex.node == "b"

    def test_fabricated_negative_update_detected(self):
        dep, nodes = _deploy(FabricatorNode)
        # b withdraws a tuple it legitimately sent earlier — without the
        # derivation actually having ceased.
        nodes["b"].fabricate("-", cost("c", "d", "b", 5), "c")
        dep.run()
        qp = QueryProcessor(dep)
        result = qp.why_disappear(cost("c", "d", "b", 5), node="c")
        assert "b" in result.faulty_nodes()

    def test_victim_state_is_polluted_but_attributable(self):
        dep, nodes = _deploy(FabricatorNode)
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        # The lie propagated into c's aggregate:
        assert nodes["c"].app.has_tuple(best_cost("c", "d", 1))
        # ... and the effects query from the fabricated belief finds it.
        qp = QueryProcessor(dep)
        fwd = qp.effects(cost("c", "d", "b", 1), node="c", scope=6)
        tups = {v.tup for v in fwd.vertices() if v.tup is not None}
        assert best_cost("c", "d", 1) in tups


class TestTampering:
    def test_broken_chain_proves_fault(self):
        dep, nodes = _deploy(TamperingNode)
        nodes["b"].tamper_entry(2, ("rewritten-history",))
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()

    def test_recomputed_chain_caught_by_consistency_check(self):
        dep, nodes = _deploy(TamperingNode)
        nodes["b"].tamper_entry(2, ("rewritten-history",),
                                recompute_chain=True)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()

    def test_consistency_check_disabled_misses_recomputed_chain(self):
        # Ablation: without the consistency check (and with no embedded
        # evidence from other logs yet), a self-consistent rewrite of a
        # non-message entry is NOT immediately caught — demonstrating why
        # the paper's consistency check exists.
        dep, nodes = _deploy(TamperingNode)
        nodes["b"].tamper_entry(1, ("rewritten",), recompute_chain=True)
        qp = QueryProcessor(dep, run_consistency_check=False)
        view = qp.mq.view_of("b")
        assert view.status != "ok" or True  # may still fail on evidence
        qp2 = QueryProcessor(dep, run_consistency_check=True)
        assert qp2.mq.view_of("b").status == "proven-faulty"


class TestEquivocation:
    def test_forked_log_detected(self):
        dep, nodes = _deploy(ForkingNode)
        nodes["b"].fork_log(keep_upto=3)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()

    def test_fork_detected_even_with_new_activity(self):
        dep, nodes = _deploy(ForkingNode)
        nodes["b"].fork_log(keep_upto=3)
        # The forked node keeps operating on its new branch.
        nodes["b"].insert(link("b", "e", 9))
        dep.run()
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert "b" in result.faulty_nodes()


class TestSilence:
    def test_unresponsive_node_yields_yellow(self):
        dep, nodes = _deploy(SilentNode)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        yellow_nodes = {v.node for v in result.yellow_vertices()}
        assert "b" in yellow_nodes
        assert "b" in result.suspect_nodes()
        assert "b" not in result.faulty_nodes()  # not *proven* faulty

    def test_recovery_after_node_starts_answering(self):
        dep, nodes = _deploy(SilentNode)
        qp = QueryProcessor(dep)
        first = qp.why(best_cost("c", "d", 5))
        assert first.yellow_vertices()
        nodes["b"].refuse_retrieve = False
        qp.mq.invalidate("b")
        second = qp.why(best_cost("c", "d", 5))
        assert not second.yellow_vertices()
        assert second.is_clean()


class TestSuppression:
    def test_suppressed_update_leaves_stale_belief(self):
        dep, nodes = _deploy(SuppressorNode)
        nodes["b"].suppress_to.add("c")
        # b's link to d gets worse; the resulting -cost/+cost updates to c
        # are silently dropped, so c's table goes stale.
        nodes["b"].delete(link("b", "d", 3))
        dep.run()
        assert nodes["c"].app.has_tuple(cost("c", "d", "b", 5))  # stale
        qp = QueryProcessor(dep)
        # Step 1 (the paper's workflow): why does c still have the route?
        # The backward chain is legitimately black — c's belief was
        # correctly derived when it was established.
        backward = qp.why(best_cost("c", "d", 5))
        assert backward.is_clean()
        # Step 2: damage assessment on the believed tuple at its host —
        # the suppressed −τ notification shows up as a red send vertex
        # (b's machine produced it, b never sent it).
        forward = qp.effects(cost("c", "d", "b", 5), node="b", scope=4)
        assert "b" in forward.faulty_nodes()


class TestMisexecution:
    def test_runtime_program_divergence_detected(self):
        dep = Deployment(seed=99, key_bits=256)
        nodes = build_paper_network(
            dep, node_overrides={"b": MisexecutingNode})
        dep.run()
        from repro.apps.mincost import mincost_factory

        # The corrupt program suppresses route propagation (max_cost=1
        # blocks every R2 derivation), so b silently stops advertising.
        corrupt = mincost_factory(max_cost=1)("b")
        corrupt.restore(nodes["b"].app.snapshot())
        nodes["b"].install_corrupt_app(corrupt)
        # A brand-new link: the honest program would advertise routes over
        # it; the corrupt one silently doesn't.
        nodes["b"].insert(link("b", "e", 1))
        dep.run()
        # A later input commits b to having produced no output for the
        # previous one (the GCA flags unsent pending outputs there).
        nodes["b"].insert(link("b", "e", 2))
        dep.run()
        result = QueryProcessor(dep).effects(link("b", "e", 1), scope=6)
        assert "b" in result.faulty_nodes()


class TestInputLying:
    def test_input_lie_is_black_but_visible(self):
        # Section 4.2's first limitation: lying about local inputs cannot
        # be detected automatically. The provenance is accurate — it shows
        # the lying insert as the root cause, for the human to judge.
        dep = Deployment(seed=55, key_bits=256)
        nodes = build_paper_network(
            dep, node_overrides={"b": InputLiarNode})
        dep.run()
        nodes["b"].lie_insert(link("b", "d", 1))  # phantom cheap link
        dep.run()
        qp = QueryProcessor(dep)
        result = qp.why(best_cost("c", "d", 3))  # c now believes cost 3
        assert result.is_clean()  # NOT automatically detected
        lying_inserts = [v for v in result.vertices()
                         if v.vtype == "insert"
                         and v.tup == link("b", "d", 1)]
        assert lying_inserts  # but the root cause is in plain sight


class TestMultipleAdversaries:
    def test_two_byzantine_nodes_both_identified(self):
        dep = Deployment(seed=101, key_bits=256)
        nodes = build_paper_network(dep, node_overrides={
            "b": FabricatorNode, "e": TamperingNode,
        })
        dep.run()
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        nodes["e"].tamper_entry(1, ("gone",))
        qp = QueryProcessor(dep)
        r1 = qp.why(best_cost("c", "d", 1))
        assert "b" in r1.faulty_nodes()
        # c's best route to a runs through e (1 + 3), so this query's
        # provenance chain visits the tampered node.
        r2 = qp.why(best_cost("c", "a", 4))
        assert "e" in r2.faulty_nodes()
