"""Parallel ≡ serial equivalence for worker-pool view builds.

The executor only changes *scheduling* of the node-local build phase;
every querier-shared effect (evidence harvesting, memo commits, stats
merging, view creation) happens on the calling thread in canonical node
order. These tests pin the resulting contract: macroquery colors,
proven-faulty verdicts and merged QueryStats counters are identical for
every worker count — including under misbehaving nodes — and the
incremental consistency-check cursor keeps refresh scans proportional to
new evidence.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import ForkingNode, SilentNode, TamperingNode
from repro.snp.executor import (
    SerialExecutor, ThreadedExecutor, make_executor,
)

WORKER_COUNTS = (1, 2, 4, 8)


def _net(seed=77, overrides=None):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides=overrides or {})
    dep.run()
    return dep, nodes


def _fingerprint(result):
    return sorted((str(v.key()), v.color)
                  for v in result.graph.vertices())


def _cold_outcome(dep, workers, scope=5):
    """Everything observable from one cold macroquery."""
    qp = QueryProcessor(dep, executor=workers)
    result = qp.why(best_cost("c", "d", 5), scope=scope)
    outcome = {
        "colors": _fingerprint(result),
        "faulty": result.faulty_nodes(),
        "suspect": result.suspect_nodes(),
        "counters": qp.mq.stats.counters(),
        "views": {str(n): v.status for n, v in qp.mq._views.items()},
    }
    qp.close()
    return outcome


# ------------------------------------------------------- macroquery paths


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_clean_network(self, workers):
        dep, _nodes = _net()
        assert _cold_outcome(dep, workers) == _cold_outcome(dep, 1)

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_forking_adversary(self, workers):
        dep, nodes = _net(overrides={"b": ForkingNode})
        nodes["b"].fork_log(keep_upto=3)
        serial = _cold_outcome(dep, 1)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, workers) == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_tampering_adversary(self, workers):
        dep, nodes = _net(overrides={"b": TamperingNode})
        nodes["b"].tamper_entry(2, ("rewritten-history",))
        serial = _cold_outcome(dep, 1)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, workers) == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_silent_adversary(self, workers):
        dep, _nodes = _net(overrides={"b": SilentNode})
        serial = _cold_outcome(dep, 1)
        assert "b" in serial["suspect"]
        assert serial["views"]["b"] == "unreachable"
        assert _cold_outcome(dep, workers) == serial

    def test_prefetch_matches_lazy_exploration(self):
        dep, _nodes = _net()
        lazy = QueryProcessor(dep)
        eager = QueryProcessor(dep, executor=4)
        eager.prefetch()
        result_lazy = lazy.why(best_cost("c", "d", 5))
        result_eager = eager.why(best_cost("c", "d", 5))
        assert _fingerprint(result_lazy) == _fingerprint(result_eager)
        assert {str(n): v.status for n, v in lazy.mq._views.items()} \
            == {str(n): v.status
                for n, v in eager.mq._views.items()
                if n in lazy.mq._views}
        eager.close()

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=4),
           workers=st.sampled_from((2, 4)))
    def test_equivalence_property(self, seed, workers):
        dep, _nodes = _net(seed=100 + seed)
        assert _cold_outcome(dep, workers) == _cold_outcome(dep, 1)


class TestParallelRefresh:
    def _refresh_outcome(self, workers):
        dep, nodes = _net(seed=91)
        qp = QueryProcessor(dep, executor=workers)
        qp.why(best_cost("c", "d", 5))
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        before = qp.mq.stats.copy()
        qp.refresh()
        delta = qp.mq.stats.delta_since(before)
        result = qp.why(best_cost("c", "d", 5))
        outcome = {
            "colors": _fingerprint(result),
            "delta": delta.counters(),
            "views": {str(n): v.status for n, v in qp.mq._views.items()},
        }
        qp.close()
        return outcome

    @pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
    def test_refresh_counters_and_colors_match_serial(self, workers):
        assert self._refresh_outcome(workers) == self._refresh_outcome(1)

    @pytest.mark.parametrize("workers", (1, 4))
    def test_unexpected_task_error_invalidates_unfinalized_views(
            self, workers):
        # An *unexpected* exception escaping a build task aborts the
        # batch; members not yet finalized may hold replays advanced past
        # their committed heads and must be dropped, not kept.
        dep, nodes = _net(seed=93)
        qp = QueryProcessor(dep, executor=workers)
        qp.why(best_cost("c", "d", 5))
        assert "b" in qp.mq._views

        def boom(*_args, **_kwargs):
            raise RuntimeError("boom")

        nodes["b"].retrieve = boom
        with pytest.raises(RuntimeError, match="boom"):
            qp.refresh()
        assert "b" not in qp.mq._views
        del nodes["b"].retrieve  # restore the class method
        assert qp.why(best_cost("c", "d", 5)).is_clean()
        qp.close()

    @pytest.mark.parametrize("workers", (1, 4))
    def test_fork_after_cached_head_detected(self, workers):
        dep, nodes = _net(seed=92, overrides={"b": ForkingNode})
        qp = QueryProcessor(dep, executor=workers)
        qp.why(best_cost("c", "d", 5))
        head = qp.mq.view_of("b").head_index
        nodes["b"].fork_log(keep_upto=head - 4)
        nodes["b"].insert(link("b", "q", 4))
        dep.run()
        qp.refresh()
        view = qp.mq._views["b"]
        assert view.status == "proven-faulty"
        assert "fork" in view.verdict_reason
        qp.close()


# ----------------------------------------------------- executor machinery


class TestExecutors:
    def test_make_executor_specs(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(4)
        assert isinstance(pool, ThreadedExecutor) and pool.workers == 4
        named = make_executor("thread:3")
        assert isinstance(named, ThreadedExecutor) and named.workers == 3
        passthrough = SerialExecutor()
        assert make_executor(passthrough) is passthrough
        with pytest.raises(ValueError):
            make_executor("fibers")
        with pytest.raises(ValueError):
            make_executor(0)
        with pytest.raises(ValueError):
            make_executor(True)

    def test_threaded_results_align_with_task_order(self):
        import time

        def task(i):
            def run():
                time.sleep(0.01 * ((7 * i) % 5))  # scramble finish order
                return i
            return run

        pool = ThreadedExecutor(4)
        try:
            assert pool.run([task(i) for i in range(10)]) == list(range(10))
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = ThreadedExecutor(2)
        assert pool.run([lambda: 1]) == [1]
        pool.close()
        pool.close()


# ------------------------------------------- incremental consistency scan


class TestConsistencyCursor:
    def test_node_side_cursor_slices_new_evidence(self):
        dep, nodes = _net(seed=95)
        holder, about = "c", "b"
        full = nodes[holder].authenticators_about(about)
        assert full  # the network exchanged messages
        assert nodes[holder].authenticators_about(about, since=len(full)) \
            == []
        tail = nodes[holder].authenticators_about(about, since=1)
        assert tail == full[1:]

    def test_deployment_cursor_round_trip(self):
        dep, nodes = _net(seed=96)
        first, cursor = dep.collect_authenticators_about_since("b", None)
        assert first == dep.collect_authenticators_about("b")
        again, cursor2 = dep.collect_authenticators_about_since("b", cursor)
        assert again == []
        assert cursor2 == cursor
        # New traffic toward b produces new evidence — and the cursor
        # yields exactly the complement of what was already scanned.
        nodes["a"].insert(link("a", "b", 1))
        dep.run()
        fresh, cursor3 = dep.collect_authenticators_about_since("b", cursor)
        assert fresh
        everything = dep.collect_authenticators_about("b")
        assert len(first) + len(fresh) == len(everything)
        sig = lambda auths: {bytes(a.signature) for a in auths}  # noqa: E731
        assert sig(first) | sig(fresh) == sig(everything)
        assert dep.collect_authenticators_about_since("b", cursor3)[0] == []

    def test_refresh_scans_only_new_evidence(self):
        dep, nodes = _net(seed=97)
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        # The cold build committed a cursor per ok view; with no new
        # traffic, a refresh collects nothing for the consistency check.
        for node_id, view in qp.mq._views.items():
            if view.status != "ok":
                continue
            cursor = qp.mq._consistency_cursors[node_id]
            assert dep.collect_authenticators_about_since(
                node_id, cursor)[0] == []

    def test_cursor_reset_on_invalidate(self):
        dep, _nodes = _net(seed=98)
        qp = QueryProcessor(dep)
        qp.why(best_cost("c", "d", 5))
        assert qp.mq._consistency_cursors
        qp.mq.invalidate()
        assert not qp.mq._consistency_cursors
