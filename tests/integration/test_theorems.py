"""The paper's formal properties, tested end to end.

* Theorems 1–3 (Appendix B): the GCA is incremental, compositional, and
  uses colors appropriately — tested over full executions recorded by the
  deployment.
* Theorem 4 (monotonicity of Gν): adding evidence never removes vertices.
* Theorem 5 (accuracy): correct nodes' vertices appear black with their
  true predecessors/successors.
* Theorem 6 (completeness): detectably faulty nodes yield a red or yellow
  vertex.
"""

import pytest

from repro.apps.mincost import (
    best_cost, build_paper_network, cost, link, mincost_factory,
)
from repro.provgraph.gca import GraphConstructor
from repro.provgraph.vertices import Color
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import FabricatorNode
from repro.snp.replay import log_entries_to_history


def _full_history(dep):
    """Merge all nodes' logs into one global history, ordered by time."""
    events = []
    for node in dep.nodes.values():
        events.extend(log_entries_to_history(node.node_id,
                                             node.log.entries))
    events.sort(key=lambda e: (e.t, str(e.node)))
    return events


def _run_gca(dep, events):
    gca = GraphConstructor(
        lambda n: dep.app_factories[n](n), t_prop=dep.sim.t_prop
    )
    gca.known_alarm_msg_ids = dep.maintainer.alarmed_msg_ids()
    for event in events:
        gca.process(event)
    return gca.graph


@pytest.fixture(scope="module")
def converged():
    dep = Deployment(seed=7, key_bits=256)
    nodes = build_paper_network(dep)
    dep.run()
    return dep, nodes


class TestTheorem1Incremental:
    def test_prefix_graph_is_subgraph(self, converged):
        dep, _nodes = converged
        events = _full_history(dep)
        # Events from one node must be processed in log order; a global
        # time sort preserves that because log timestamps are monotone.
        g_half = _run_gca(dep, events[: len(events) // 2])
        g_full = _run_gca(dep, events)
        assert g_half.is_subgraph_of(g_full)

    def test_every_prefix_monotone(self, converged):
        dep, _nodes = converged
        events = _full_history(dep)
        checkpoints = [len(events) // 4, len(events) // 2,
                       3 * len(events) // 4, len(events)]
        graphs = [_run_gca(dep, events[:k]) for k in checkpoints]
        for earlier, later in zip(graphs, graphs[1:]):
            assert earlier.is_subgraph_of(later)


class TestTheorem2Compositional:
    def test_projection_equals_local_construction(self, converged):
        dep, _nodes = converged
        events = _full_history(dep)
        g_full = _run_gca(dep, events)
        for name in dep.nodes:
            local_events = [e for e in events if e.node == name]
            g_local = _run_gca(dep, local_events)
            projected = g_full.project(name)
            # G(h|i) = G(h)|i: same vertex keys on the node itself.
            local_keys = {v.key() for v in g_local.vertices()
                          if v.node == name}
            proj_keys = {v.key() for v in projected.vertices()
                         if v.node == name}
            assert local_keys == proj_keys

    def test_union_of_projections_covers_graph(self, converged):
        dep, _nodes = converged
        events = _full_history(dep)
        g_full = _run_gca(dep, events)
        union = None
        for name in dep.nodes:
            piece = g_full.project(name)
            union = piece if union is None else union.union(piece)
        assert {v.key() for v in union.vertices()} == \
            {v.key() for v in g_full.vertices()}


class TestTheorem3Colors:
    def test_correct_execution_has_no_red(self, converged):
        dep, _nodes = converged
        graph = _run_gca(dep, _full_history(dep))
        assert graph.red_vertices() == []

    def test_faulty_node_has_red_in_true_graph(self):
        dep = Deployment(seed=13, key_bits=256)
        nodes = build_paper_network(
            dep, node_overrides={"b": FabricatorNode})
        dep.run()
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        graph = _run_gca(dep, _full_history(dep))
        reds = graph.red_vertices()
        assert reds and all(v.node == "b" for v in reds)


class TestTheorem4Monotonicity:
    def test_more_evidence_never_shrinks_gnu(self, converged):
        dep, _nodes = converged
        qp = QueryProcessor(dep)
        r_small = qp.why(best_cost("c", "d", 5), scope=2)
        r_large = qp.why(best_cost("c", "d", 5), scope=50)
        assert r_small.graph.is_subgraph_of(r_large.graph)


class TestTheorem5Accuracy:
    def test_vertices_match_true_graph(self, converged):
        dep, _nodes = converged
        true_graph = _run_gca(dep, _full_history(dep))
        result = QueryProcessor(dep).why(best_cost("c", "d", 5), scope=50)
        for vertex in result.vertices():
            truth = true_graph.get(vertex.key())
            assert truth is not None, f"{vertex!r} not in G"
            assert truth.color == Color.BLACK

    def test_accuracy_under_attack(self):
        # Even with a fabricator active, every *black* vertex the querier
        # reports is genuinely in G with the same key.
        dep = Deployment(seed=13, key_bits=256)
        nodes = build_paper_network(
            dep, node_overrides={"b": FabricatorNode})
        dep.run()
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        true_graph = _run_gca(dep, _full_history(dep))
        result = QueryProcessor(dep).why(best_cost("c", "d", 1), scope=50)
        for vertex in result.vertices():
            if vertex.color == Color.BLACK and vertex.node != "b":
                assert true_graph.get(vertex.key()) is not None


class TestTheorem6Completeness:
    def test_every_correct_vertex_reachable(self, converged):
        dep, _nodes = converged
        # Completeness claim (a): with full evidence, the querier's view
        # of each correct node contains that node's true partition.
        true_graph = _run_gca(dep, _full_history(dep))
        qp = QueryProcessor(dep)
        for name in dep.nodes:
            view = qp.mq.view_of(name)
            assert view.status == "ok"
            true_keys = {v.key() for v in true_graph.vertices()
                         if v.node == name}
            view_keys = {v.key() for v in view.graph.vertices()}
            assert true_keys <= view_keys

    def test_detectable_fault_yields_red_or_yellow(self):
        dep = Deployment(seed=13, key_bits=256)
        nodes = build_paper_network(
            dep, node_overrides={"b": FabricatorNode})
        dep.run()
        nodes["b"].fabricate("+", cost("c", "d", "b", 1), "c")
        dep.run()
        result = QueryProcessor(dep).why(best_cost("c", "d", 1), scope=50)
        assert result.suspect_nodes() == ["b"]
