"""Log replication extension (paper Section 5.8).

The paper notes SNooPy has no built-in redundancy: an adversary that
destroys a node's provenance state disconnects parts of the graph (yellow
vertices), and suggests replicating each log as mitigation. This extension
implements that: replicas hold verifiable mirror copies (hash chain +
origin-signed head), and the microquery module falls back to them when
retrieve goes unanswered.
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import SilentNode, TamperingNode
from repro.snp.evidence import AUTHENTICATOR_BYTES


def _silent_b_network(seed=300, replicate=True):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides={"b": SilentNode})
    dep.run()
    nodes["b"].refuse_retrieve = False   # cooperative during replication
    if replicate:
        dep.replicate_logs(replication_factor=2)
    nodes["b"].refuse_retrieve = True    # then destroyed / silent
    return dep, nodes


class TestReplicationRecovery:
    def test_without_replication_query_is_yellow(self):
        dep, nodes = _silent_b_network(replicate=False)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert any(v.node == "b" for v in result.yellow_vertices())

    def test_mirror_resolves_silent_node(self):
        dep, nodes = _silent_b_network(replicate=True)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        assert result.is_clean()
        assert not result.yellow_vertices()

    def test_mirror_view_matches_direct_view(self):
        dep, nodes = _silent_b_network(replicate=True)
        qp_mirror = QueryProcessor(dep)
        view_mirror = qp_mirror.mq.view_of("b")
        nodes["b"].refuse_retrieve = False
        qp_direct = QueryProcessor(dep)
        view_direct = qp_direct.mq.view_of("b")
        assert view_mirror.status == view_direct.status == "ok"
        assert {v.key() for v in view_mirror.graph.vertices()} == \
            {v.key() for v in view_direct.graph.vertices()}

    def test_mirrors_are_distributed(self):
        dep, nodes = _silent_b_network(replicate=True)
        holders = [n for n in dep.nodes.values()
                   if n.mirror_of("b") is not None]
        assert len(holders) >= 2

    def test_longest_mirror_wins(self):
        dep = Deployment(seed=301, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.replicate_logs()
        # More activity, then re-replicate: mirrors must advance.
        before = dep.find_mirror("b").head_auth.index
        nodes["b"].insert(link("b", "z", 7))
        dep.run()
        dep.replicate_logs()
        after = dep.find_mirror("b").head_auth.index
        assert after > before


class TestReplicationTraffic:
    """Replication is real wire traffic: every pushed log segment is
    charged to the origin under the ``replication`` category (plus one
    head authenticator per push), so the Figure-5-style overhead story
    includes what keeping replicas fresh costs."""

    def test_full_replication_charges_exact_bytes(self):
        dep = Deployment(seed=310, key_bits=256)
        build_paper_network(dep)
        dep.run()
        assert dep.traffic.totals()["replication"] == 0
        dep.replicate_logs(replication_factor=2)
        expected = 0
        for node in dep.nodes.values():
            segment = sum(e.size_bytes() for e in node.log.entries)
            expected += 2 * (segment + AUTHENTICATOR_BYTES)
        assert dep.traffic.totals()["replication"] == expected
        assert dep.traffic.replication_pushes == 2 * len(dep.nodes)

    def test_delta_replication_charges_only_the_suffix(self):
        dep = Deployment(seed=311, key_bits=256)
        nodes = build_paper_network(dep)
        dep.run()
        dep.replicate_deltas(replication_factor=2)
        after_full = dep.traffic.totals()["replication"]
        assert after_full > 0

        # Quiescent pass ships nothing, so it charges nothing.
        assert dep.replicate_deltas(replication_factor=2) == 0
        assert dep.traffic.totals()["replication"] == after_full

        # New activity: the next pass charges the suffixes, not the logs.
        heads = {name: len(node.log) for name, node in dep.nodes.items()}
        nodes["a"].insert(link("a", "z", 2))
        dep.run()
        pushes = dep.replicate_deltas(replication_factor=2)
        assert pushes > 0
        delta = dep.traffic.totals()["replication"] - after_full
        expected = 0
        for name, node in dep.nodes.items():
            suffix = node.log.segment(heads[name] + 1, len(node.log))
            if suffix:
                expected += 2 * (
                    sum(e.size_bytes() for e in suffix)
                    + AUTHENTICATOR_BYTES
                )
        assert delta == expected
        full_log_bytes = 2 * sum(
            sum(e.size_bytes() for e in node.log.entries)
            for node in dep.nodes.values()
        )
        assert delta < full_log_bytes / 4

    def test_per_node_attribution(self):
        dep = Deployment(seed=312, key_bits=256)
        build_paper_network(dep)
        dep.run()
        dep.replicate_logs(replication_factor=1)
        for name, node in dep.nodes.items():
            segment = sum(e.size_bytes() for e in node.log.entries)
            assert dep.traffic.node_totals(name)["replication"] == \
                segment + AUTHENTICATOR_BYTES


class TestReplicationCannotFrame:
    def test_tampered_mirror_is_rejected_not_blamed(self):
        """A malicious replica that rewrites its mirror cannot make the
        origin look faulty: the chain no longer verifies, so the mirror is
        simply unusable evidence (the origin stays yellow, never red)."""
        dep, nodes = _silent_b_network(seed=302, replicate=True)
        for node in dep.nodes.values():
            mirror = node.mirror_of("b")
            if mirror is not None:
                # Corrupt every mirror copy in place.
                mirror.entries[0].content = ("forged",)
        result = QueryProcessor(dep).why(best_cost("c", "d", 5))
        # b cannot be *proven* faulty from forged mirrors: its vertices
        # stay yellow (suspect), never red.
        assert "b" not in {v.node for v in result.red_vertices()}
        assert any(v.node == "b" for v in result.yellow_vertices())
        qp = QueryProcessor(dep)
        view = qp.mq.view_of("b")
        assert view.status == "unreachable"
        assert "bad mirror" in view.verdict_reason
