"""Process-pool view builds: serial ≡ wire ≡ process equivalence.

Every executor funnels the same compute step; these tests pin the
resulting contract end-to-end. The cheap, deterministic coverage runs on
the ``WireCheckExecutor`` (the full serialization round trip without
process spawn); a smaller set of tests pays for real spawn-based pools to
prove the whole path — per-process hash randomization included — produces
bit-identical colors, verdicts and merged counters. Also covers executor
lifecycle (ownership, context management) and the pending-skip registry
(satellite of the same PR).
"""

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import ForkingNode, SilentNode, TamperingNode
from repro.snp.evidence import Authenticator
from repro.snp.executor import (
    ProcessBlobExecutor, ProcessExecutor, SerialExecutor, ThreadedExecutor,
    WireCheckExecutor, make_executor,
)


def _net(seed=77, overrides=None):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides=overrides or {})
    dep.run()
    return dep, nodes


def _fingerprint(result):
    return sorted((str(v.key()), v.color)
                  for v in result.graph.vertices())


def _cold_outcome(dep, executor, scope=5):
    with QueryProcessor(dep, executor=executor) as qp:
        result = qp.why(best_cost("c", "d", 5), scope=scope)
        return {
            "colors": _fingerprint(result),
            "faulty": result.faulty_nodes(),
            "suspect": result.suspect_nodes(),
            "counters": qp.mq.stats.counters(),
            "views": {str(n): v.status for n, v in qp.mq._views.items()},
        }


class TestWireCheckEquivalence:
    """The serialization contract, exercised deterministically: every
    work item, context and outcome crosses a pickle of its wire form."""

    def test_clean_network(self):
        dep, _nodes = _net()
        assert _cold_outcome(dep, "wire") == _cold_outcome(dep, None)

    def test_forking_adversary(self):
        dep, nodes = _net(overrides={"b": ForkingNode})
        nodes["b"].fork_log(keep_upto=3)
        serial = _cold_outcome(dep, None)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, "wire") == serial

    def test_tampering_adversary(self):
        dep, nodes = _net(overrides={"b": TamperingNode})
        nodes["b"].tamper_entry(2, ("rewritten-history",))
        serial = _cold_outcome(dep, None)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, "wire") == serial

    def test_silent_adversary(self):
        dep, _nodes = _net(overrides={"b": SilentNode})
        serial = _cold_outcome(dep, None)
        assert serial["views"]["b"] == "unreachable"
        assert _cold_outcome(dep, "wire") == serial

    def test_wire_refresh_matches_serial(self):
        def refreshed(executor):
            dep, nodes = _net(seed=91)
            with QueryProcessor(dep, executor=executor) as qp:
                qp.why(best_cost("c", "d", 5))
                nodes["a"].insert(link("a", "z", 2))
                dep.run()
                before = qp.mq.stats.copy()
                qp.refresh()
                delta = qp.mq.stats.delta_since(before)
                result = qp.why(best_cost("c", "d", 5))
                return {"colors": _fingerprint(result),
                        "delta": delta.counters()}
        assert refreshed("wire") == refreshed(None)

    def test_wire_checkpointed_build_matches_serial(self):
        def outcome(executor):
            dep, nodes = _net(seed=83)
            dep.checkpoint_all()
            nodes["a"].insert(link("a", "y", 4))
            dep.run()
            with QueryProcessor(dep, use_checkpoints=True,
                                executor=executor) as qp:
                result = qp.why(best_cost("c", "d", 5))
                return {"colors": _fingerprint(result),
                        "counters": qp.mq.stats.counters()}
        serial = outcome(None)
        assert serial["counters"]["auth_checks_skipped"] >= 0
        assert outcome("wire") == serial


@pytest.mark.slow
class TestProcessEquivalence:
    """Real spawn-based pools: equivalence at 1/2/4 workers, adversaries
    included. Spawn start-up makes these the suite's slowest tests."""

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_clean_network_matches_serial(self, workers):
        dep, _nodes = _net()
        assert _cold_outcome(dep, f"process:{workers}") \
            == _cold_outcome(dep, None)

    def test_forking_adversary_matches_serial(self):
        dep, nodes = _net(overrides={"b": ForkingNode})
        nodes["b"].fork_log(keep_upto=3)
        serial = _cold_outcome(dep, None)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, "process:2") == serial

    def test_silent_adversary_matches_serial(self):
        dep, _nodes = _net(overrides={"b": SilentNode})
        serial = _cold_outcome(dep, None)
        assert serial["views"]["b"] == "unreachable"
        assert _cold_outcome(dep, "process:2") == serial

    def test_tampering_matches_serial(self):
        dep, nodes = _net(overrides={"b": TamperingNode})
        nodes["b"].tamper_entry(2, ("rewritten-history",))
        serial = _cold_outcome(dep, None)
        assert "b" in serial["faulty"]
        assert _cold_outcome(dep, "process:2") == serial

    def test_refresh_matches_serial(self):
        def refreshed(executor):
            dep, nodes = _net(seed=91)
            with QueryProcessor(dep, executor=executor) as qp:
                qp.why(best_cost("c", "d", 5))
                nodes["a"].insert(link("a", "z", 2))
                dep.run()
                before = qp.mq.stats.copy()
                qp.refresh()
                delta = qp.mq.stats.delta_since(before)
                result = qp.why(best_cost("c", "d", 5))
                return {"colors": _fingerprint(result),
                        "delta": delta.counters()}
        assert refreshed("process:2") == refreshed(None)


class TestExecutorLifecycle:
    def test_make_executor_specs(self):
        assert isinstance(make_executor("wire"), WireCheckExecutor)
        proc = make_executor("process:3")
        assert isinstance(proc, ProcessExecutor) and proc.workers == 3
        blob = make_executor("process-blob:2")
        assert isinstance(blob, ProcessBlobExecutor) and blob.workers == 2
        with pytest.raises(ValueError):
            make_executor("process:0")
        passthrough = WireCheckExecutor()
        assert make_executor(passthrough) is passthrough

    def test_context_manager_closes_owned_pool(self):
        dep, _nodes = _net(seed=70)
        with QueryProcessor(dep, executor="thread:2") as qp:
            qp.prefetch(["a", "b"])
            assert qp.mq.executor._pool is not None
        assert qp.mq.executor._pool is None

    def test_passed_in_executor_stays_open(self):
        dep, _nodes = _net(seed=71)
        shared = ThreadedExecutor(2)
        try:
            with QueryProcessor(dep, executor=shared) as qp:
                qp.prefetch(["a", "b"])
            assert shared._pool is not None  # caller-owned: left running
        finally:
            shared.close()

    def test_serial_querier_owns_trivial_executor(self):
        dep, _nodes = _net(seed=72)
        qp = QueryProcessor(dep)
        assert isinstance(qp.mq.executor, SerialExecutor)
        assert qp.mq._owns_executor
        qp.close()

    @pytest.mark.slow
    def test_process_pool_closes_and_is_prewarmed(self):
        dep, _nodes = _net(seed=73)
        with QueryProcessor(dep, executor="process:2") as qp:
            # prepare() ran at construction: the slots exist before the
            # first batch, so spawn cost never lands inside a query.
            assert qp.mq.executor.alive
            qp.prefetch(["a", "b"])
        assert not qp.mq.executor.alive

    @pytest.mark.slow
    def test_blob_pool_closes_and_is_prewarmed(self):
        dep, _nodes = _net(seed=73)
        with QueryProcessor(dep, executor="process-blob:2") as qp:
            assert qp.mq.executor.alive
            qp.prefetch(["a", "b"])
        assert not qp.mq.executor.alive


class TestPendingSkippedAuthenticators:
    """Evidence below a partial-segment anchor is remembered, not lost:
    a later full build retroactively checks it."""

    def _checkpointed_querier(self, seed=85):
        dep, nodes = _net(seed=seed)
        dep.checkpoint_all()
        nodes["a"].insert(link("a", "y", 4))
        dep.run()
        # The on-demand anchoring fetch (PR 6) would repay the pending
        # skips at batch end; disable it so the registry itself — what
        # these tests pin — stays observable.
        qp = QueryProcessor(dep, use_checkpoints=True,
                            fetch_pending_anchors=False)
        qp.why(best_cost("c", "d", 5))
        return dep, nodes, qp

    def test_skips_are_recorded_with_peer_and_index(self):
        _dep, _nodes, qp = self._checkpointed_querier()
        assert qp.mq.stats.auth_checks_skipped > 0
        recorded = {
            node: qp.mq.pending_skipped(node)
            for node in list(qp.mq._pending_skipped)
        }
        assert recorded  # something below an anchor was remembered
        for node, pairs in recorded.items():
            for peer, index in pairs:
                assert peer == node  # signed by the node under audit
                assert index >= 1

    def test_full_build_recovers_pending_skips(self):
        _dep, _nodes, qp = self._checkpointed_querier()
        node = next(iter(qp.mq._pending_skipped))
        owed = len(qp.mq.pending_skipped(node))
        before = qp.mq.stats.auth_checks_recovered
        qp.mq.use_checkpoints = False  # next build covers from entry 1
        qp.mq.invalidate(node)
        view = qp.mq.view_of(node)
        assert view.status == "ok"
        assert qp.mq.stats.auth_checks_recovered >= before + owed
        assert node not in qp.mq._pending_skipped

    def test_mismatching_pending_authenticator_convicts(self):
        dep, _nodes, qp = self._checkpointed_querier()
        node = "b"
        identity = dep.identity_of(node)
        forged = Authenticator(node, 1, 0.0, "f" * 64, None)
        forged.signature = identity.sign(forged.payload())
        qp.mq._pending_skipped.setdefault(node, {})[
            bytes(forged.signature)
        ] = forged
        qp.mq.use_checkpoints = False
        qp.mq.invalidate(node)
        view = qp.mq.view_of(node)
        # The node validly signed an (index, hash) that is not on its
        # chain — retroactively checking the remembered authenticator is
        # what exposes the equivocation.
        assert view.status == "proven-faulty"
        assert "authenticator" in view.verdict_reason
