"""Worker-resident view cache: the PR 6 shared view plane, end to end.

``process:N`` now keeps each replay resident in its owning worker and
ships only verified heads + deltas; these tests pin the contract that
makes that safe:

* serial ≡ resident-process bit-identical colors/verdicts/counters on
  cold builds *and* warm refreshes, adversary gallery included
  (forking, tampering, over-truncating);
* warm refreshes actually hit the cache (``view_cache_hits`` > 0,
  ``pickle_bytes_avoided`` > 0) and queries run against resident state
  without materializing blobs in the coordinator;
* every way an entry can vanish — worker death, LRU eviction under a
  tiny ``resident_cap``, explicit invalidation — degrades to a cold
  rebuild with identical colors, never a wrong or missing answer.
"""

import os
import signal

import pytest

from repro.apps.mincost import best_cost, build_paper_network, link
from repro.snp import Deployment, QueryProcessor
from repro.snp.adversary import (
    ForkingNode, OverTruncatingNode, TamperingNode,
)
from repro.snp.executor import ProcessExecutor
from repro.snp.microquery import OK
from repro.snp.wire import ResidentReplay

pytestmark = pytest.mark.slow  # every test spawns a real process pool


def _net(seed=77, overrides=None):
    dep = Deployment(seed=seed, key_bits=256)
    nodes = build_paper_network(dep, node_overrides=overrides or {})
    dep.run()
    return dep, nodes


def _fingerprint(result):
    return sorted((str(v.key()), v.color) for v in result.graph.vertices())


def _refresh_outcome(executor, seed=91, mutate=None, counters=True,
                     overrides=None):
    """Build → mutate the deployment → refresh → re-query, capturing
    everything the equivalence contract covers."""
    dep, nodes = _net(seed=seed, overrides=overrides)
    with QueryProcessor(dep, executor=executor) as qp:
        qp.why(best_cost("c", "d", 5))
        if mutate is not None:
            mutate(dep, nodes)
        else:
            nodes["a"].insert(link("a", "z", 2))
        dep.run()
        qp.refresh()
        result = qp.why(best_cost("c", "d", 5))
        out = {
            "colors": _fingerprint(result),
            "faulty": result.faulty_nodes(),
            "views": {str(n): v.status for n, v in qp.mq._views.items()},
        }
        if counters:
            out["counters"] = qp.mq.stats.counters()
        return out, qp.mq.stats.copy()


class TestResidentEquivalence:
    """Serial ≡ resident-process, counters included, under refresh."""

    def test_clean_refresh_matches_serial(self):
        serial, _ = _refresh_outcome(None)
        resident, stats = _refresh_outcome("process:2")
        assert resident == serial
        assert stats.view_cache_hits > 0

    def test_forking_after_build_matches_serial(self):
        def mutate(dep, nodes):
            nodes["b"].fork_log(keep_upto=3)
            nodes["a"].insert(link("a", "z", 2))
        serial, _ = _refresh_outcome(None, seed=93, mutate=mutate,
                                     overrides={"b": ForkingNode})
        resident, _ = _refresh_outcome("process:2", seed=93, mutate=mutate,
                                       overrides={"b": ForkingNode})
        assert "b" in serial["faulty"]
        assert resident == serial

    def test_tampering_after_build_matches_serial(self):
        def mutate(dep, nodes):
            # Grow the log first, then rewrite an entry *in the new
            # suffix* — a refresh re-fetches only past the verified head,
            # so only suffix tampering is visible to an extend.
            nodes["a"].insert(link("a", "z", 2))
            nodes["b"].insert(link("b", "w", 3))
            dep.run()
            nodes["b"].tamper_entry(len(nodes["b"].log),
                                    ("rewritten-history",))
        serial, _ = _refresh_outcome(None, seed=94, mutate=mutate,
                                     overrides={"b": TamperingNode})
        resident, _ = _refresh_outcome("process:2", seed=94, mutate=mutate,
                                       overrides={"b": TamperingNode})
        assert "b" in serial["faulty"]
        assert resident == serial

    def test_over_truncator_post_gc_matches_serial(self):
        def post_gc_outcome(executor):
            dep, nodes = _net(seed=95, overrides={"b": OverTruncatingNode})
            auditor = QueryProcessor(dep)
            dep.register_querier(auditor)
            auditor.prefetch()
            dep.checkpoint_all()
            nodes["a"].insert(link("a", "z", 2))
            dep.run()
            auditor.refresh()
            dep.checkpoint_all()
            nodes["b"].insert(link("b", "y", 9))
            dep.run()
            dep.run_gc(checkpoint=False)
            dep.unregister_querier(auditor)
            auditor.close()
            with QueryProcessor(dep, executor=executor) as qp:
                qp.prefetch()  # every node, b's truncation included
                result = qp.why(best_cost("c", "d", 5), scope=5)
                return {
                    "colors": _fingerprint(result),
                    "views": {str(n): v.status
                              for n, v in qp.mq._views.items()},
                    "counters": qp.mq.stats.counters(),
                }
        serial = post_gc_outcome(None)
        assert serial["views"]["b"] == "proven-faulty"
        assert post_gc_outcome("process:2") == serial


class TestResidentCache:
    """The cache actually carries the refresh: hits, avoided bytes, and
    coordinator-side non-materialization."""

    def test_warm_refresh_avoids_reshipping_blobs(self):
        dep, nodes = _net(seed=91)
        with QueryProcessor(dep, executor="process:2") as qp:
            qp.why(best_cost("c", "d", 5))
            built = qp.mq.stats.copy()
            assert built.view_cache_misses > 0  # cold builds populate
            assert built.view_cache_hits == 0
            nodes["a"].insert(link("a", "z", 2))
            dep.run()
            qp.refresh()
            delta = qp.mq.stats.delta_since(built)
            assert delta.view_cache_hits > 0
            assert delta.pickle_bytes_avoided > 0
            assert delta.view_cache_misses == 0  # nothing rebuilt cold

    def test_queries_run_against_resident_state(self):
        dep, _nodes = _net(seed=92)
        with QueryProcessor(dep, executor="process:2") as qp:
            qp.why(best_cost("c", "d", 5))
            ok_views = [v for v in qp.mq._views.values()
                        if v.status == OK]
            assert ok_views
            for view in ok_views:
                assert isinstance(view.replay, ResidentReplay)
            # The whole exploration ran through worker-side graph ops:
            # no view had to pull its replay blob into the coordinator.
            assert not any(view.replay.materialized for view in ok_views)
            assert not any(view._graph is not None for view in ok_views)

    def test_invalidate_evicts_worker_entry(self):
        dep, _nodes = _net(seed=92)
        with QueryProcessor(dep, executor="process:2") as qp:
            qp.why(best_cost("c", "d", 5))
            before = qp.mq.stats.view_cache_evictions
            qp.mq.invalidate("c")
            assert qp.mq.stats.view_cache_evictions == before + 1
            # The rebuilt view is a cold miss, not a stale hit.
            misses = qp.mq.stats.view_cache_misses
            view = qp.mq.view_of("c")
            assert view.status == OK
            assert qp.mq.stats.view_cache_misses == misses + 1


class TestResidentFallbacks:
    """Lost entries degrade to bit-identical cold rebuilds."""

    def test_worker_death_falls_back_to_cold_build(self):
        serial, _ = _refresh_outcome(None, counters=False)
        dep, nodes = _net(seed=91)
        with QueryProcessor(dep, executor="process:2") as qp:
            qp.why(best_cost("c", "d", 5))
            # Kill every live worker outright: resident state is gone and
            # the submit path sees broken pools, not graceful errors.
            for pool in qp.mq.executor._slots:
                if pool is None:
                    continue
                for pid in list(getattr(pool, "_processes", {})):
                    os.kill(pid, signal.SIGKILL)
            nodes["a"].insert(link("a", "z", 2))
            dep.run()
            qp.refresh()
            result = qp.why(best_cost("c", "d", 5))
            # Counters legitimately diverge (the fallback re-fetches); the
            # answer — colors, verdicts, view statuses — may not.
            assert _fingerprint(result) == serial["colors"]
            assert result.faulty_nodes() == serial["faulty"]
            assert {str(n): v.status
                    for n, v in qp.mq._views.items()} == serial["views"]

    def test_tiny_resident_cap_forces_evictions_not_errors(self):
        serial, _ = _refresh_outcome(None, counters=False)
        dep, nodes = _net(seed=91)
        executor = ProcessExecutor(2, resident_cap=1)
        try:
            with QueryProcessor(dep, executor=executor) as qp:
                qp.why(best_cost("c", "d", 5))
                nodes["a"].insert(link("a", "z", 2))
                dep.run()
                before = qp.mq.stats.copy()
                qp.refresh()
                result = qp.why(best_cost("c", "d", 5))
                assert _fingerprint(result) == serial["colors"]
                assert result.faulty_nodes() == serial["faulty"]
                delta = qp.mq.stats.delta_since(before)
                # 5 nodes on 2 single-entry workers: some refresh had to
                # miss (its entry was evicted) and rebuild cold.
                assert delta.view_cache_misses > 0
        finally:
            executor.close()
